package metrics

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardedCollectorConcurrent drives many producer goroutines, each
// owning a private LogBuffer, while a reader snapshots concurrently. Run
// under -race this is the proof of the paper's "no locking overhead"
// property: no data races, and no record lost or duplicated across the
// interval boundaries the reader keeps cutting.
func TestShardedCollectorConcurrent(t *testing.T) {
	const (
		producers  = 8
		perClass   = 2000
		sharedName = "Shared"
	)
	sc := NewShardedCollector(producers)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapMu sync.Mutex
	totals := make(map[ClassID]int64) // queries observed across snapshots

	absorb := func(snap map[ClassID]Vector) {
		snapMu.Lock()
		defer snapMu.Unlock()
		for id, v := range snap {
			// interval 1.0 makes Throughput the raw query count.
			totals[id] += int64(v.Get(Throughput) + 0.5)
		}
	}

	// Reader: cut intervals as fast as it can while producers run.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				absorb(sc.Snapshot(1.0))
			}
		}
	}()

	buffers := make([]*LogBuffer, producers)
	for p := 0; p < producers; p++ {
		buffers[p] = sc.Worker(64)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := buffers[p]
			own := ClassID{App: "app", Class: fmt.Sprintf("C%d", p)}
			shared := ClassID{App: "app", Class: sharedName}
			for i := 0; i < perClass; i++ {
				buf.Append(Record{Kind: RecQuery, Class: own, Value: 0.01})
				buf.Append(Record{Kind: RecQuery, Class: shared, Value: 0.02})
				buf.Append(Record{Kind: RecAccess, Class: own, Value: float64(i), Miss: i%3 == 0})
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	// Producers are done: flush the private buffers (single-owner, so the
	// test goroutine may do it now) and take the closing snapshot.
	for _, buf := range buffers {
		buf.Flush()
	}
	absorb(sc.Snapshot(1.0))

	for p := 0; p < producers; p++ {
		own := ClassID{App: "app", Class: fmt.Sprintf("C%d", p)}
		if got := totals[own]; got != perClass {
			t.Errorf("class %v: %d queries across snapshots, want %d", own, got, perClass)
		}
	}
	shared := ClassID{App: "app", Class: sharedName}
	if got := totals[shared]; got != producers*perClass {
		t.Errorf("shared class: %d queries across snapshots, want %d", got, producers*perClass)
	}
}

// TestShardedMatchesFlat checks merge-on-read: the same record stream
// split across shards must snapshot identically to one flat collector.
func TestShardedMatchesFlat(t *testing.T) {
	flat := NewCollector()
	sc := NewShardedCollector(4)
	workers := make([]*LogBuffer, 4)
	for i := range workers {
		workers[i] = sc.WorkerFor(i, 8)
	}
	classes := []ClassID{
		{App: "tpcw", Class: "BestSeller"},
		{App: "tpcw", Class: "Home"},
		{App: "rubis", Class: "SearchItemsByRegion"},
	}
	for i := 0; i < 1000; i++ {
		id := classes[i%len(classes)]
		w := workers[i%len(workers)]
		lat := 0.001 * float64(i%50+1)
		w.Append(Record{Kind: RecQuery, Class: id, Value: lat})
		flat.RecordQuery(id, lat)
		w.Append(Record{Kind: RecAccess, Class: id, Value: float64(i), Miss: i%4 == 0})
		flat.RecordAccess(id, i%4 == 0)
		if i%10 == 0 {
			w.Append(Record{Kind: RecIO, Class: id, Value: 3})
			flat.RecordIO(id, 3)
			w.Append(Record{Kind: RecLockWait, Class: id, Value: 0.004})
			flat.RecordLockWait(id, 0.004)
		}
	}
	for _, w := range workers {
		w.Flush()
	}
	want := flat.SnapshotStats(10)
	got := sc.SnapshotStats(10)
	if len(got) != len(want) {
		t.Fatalf("class count: got %d want %d", len(got), len(want))
	}
	// Shard merging sums floats in a different order than the flat
	// collector, so compare within floating-point slack.
	approx := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= 1e-9*(1+b)
	}
	for id, ws := range want {
		gs, ok := got[id]
		if !ok {
			t.Fatalf("missing class %v", id)
		}
		for m := 0; m < NumMetrics; m++ {
			if !approx(gs.Vector[m], ws.Vector[m]) {
				t.Errorf("%v %v: got %v want %v", id, Metric(m), gs.Vector[m], ws.Vector[m])
			}
		}
		if gs.Latency.Count != ws.Latency.Count || !approx(gs.Latency.Mean, ws.Latency.Mean) ||
			gs.Latency.P50 != ws.Latency.P50 || gs.Latency.P95 != ws.Latency.P95 ||
			gs.Latency.P99 != ws.Latency.P99 || gs.Latency.Max != ws.Latency.Max {
			t.Errorf("%v latency summary: got %+v want %+v", id, gs.Latency, ws.Latency)
		}
	}
}

// TestCollectorDoubleBuffer verifies the swap preserves Snapshot's
// contract: idle classes keep reporting zero vectors in later intervals,
// and counters never leak across the swap.
func TestCollectorDoubleBuffer(t *testing.T) {
	c := NewCollector()
	id := ClassID{App: "a", Class: "Q"}
	c.RecordQuery(id, 0.5)
	s1 := c.Snapshot(1)
	if got := s1[id].Get(Throughput); got != 1 {
		t.Fatalf("first interval throughput: got %v want 1", got)
	}
	// Two idle intervals: the class must still be reported, at zero, from
	// both halves of the double buffer.
	for i := 0; i < 2; i++ {
		s := c.Snapshot(1)
		v, ok := s[id]
		if !ok {
			t.Fatalf("interval %d: idle class vanished from snapshot", i+2)
		}
		if v != (Vector{}) {
			t.Fatalf("interval %d: idle class has non-zero vector %v", i+2, v)
		}
	}
	// Steady state: snapshots must not allocate fresh accumulator maps.
	allocs := testing.AllocsPerRun(100, func() {
		c.RecordQuery(id, 0.1)
		c.Snapshot(1)
	})
	// The result map and the percentile scratch are expected; the
	// accumulator maps and histograms themselves must be recycled, so a
	// rebuild (fresh map + accum + histogram per class) would exceed this.
	if allocs > 10 {
		t.Errorf("steady-state snapshot allocates %.1f objects per run", allocs)
	}
}

// TestApplyMatchesRecords checks the batch path and the per-record path
// accumulate identically.
func TestApplyMatchesRecords(t *testing.T) {
	id := ClassID{App: "a", Class: "Q"}
	batch := []Record{
		{Kind: RecQuery, Class: id, Value: 0.2},
		{Kind: RecAccess, Class: id, Miss: true},
		{Kind: RecAccess, Class: id},
		{Kind: RecIO, Class: id, Value: 7},
		{Kind: RecReadAhead, Class: id, Value: 4},
		{Kind: RecLockWait, Class: id, Value: 0.05},
	}
	a := NewCollector()
	a.Apply(batch)
	b := NewCollector()
	b.RecordQuery(id, 0.2)
	b.RecordAccess(id, true)
	b.RecordAccess(id, false)
	b.RecordIO(id, 7)
	b.RecordReadAhead(id, 4)
	b.RecordLockWait(id, 0.05)
	av, bv := a.Snapshot(2)[id], b.Snapshot(2)[id]
	if av != bv {
		t.Fatalf("Apply %v != record methods %v", av, bv)
	}
}
