package metrics

// AccessWindow keeps the most recent page accesses issued on behalf of one
// query class (§3.3: "a window of the most recent page accesses issued by
// the DBMS on behalf of the queries belonging to each specific query
// class"). MRC recomputation upon an SLA violation replays this window.
type AccessWindow struct {
	buf   []uint64
	head  int
	size  int
	total int64
}

// NewAccessWindow returns a window holding up to capacity page numbers
// (minimum 1).
func NewAccessWindow(capacity int) *AccessWindow {
	if capacity < 1 {
		capacity = 1
	}
	return &AccessWindow{buf: make([]uint64, capacity)}
}

// Add appends a page access, evicting the oldest when full.
func (w *AccessWindow) Add(page uint64) {
	w.buf[w.head] = page
	w.head = (w.head + 1) % len(w.buf)
	if w.size < len(w.buf) {
		w.size++
	}
	w.total++
}

// Len reports the number of accesses currently retained.
func (w *AccessWindow) Len() int { return w.size }

// Total reports the number of accesses ever added.
func (w *AccessWindow) Total() int64 { return w.total }

// Snapshot returns the retained accesses in arrival order (oldest first).
func (w *AccessWindow) Snapshot() []uint64 {
	out := make([]uint64, 0, w.size)
	if w.size < len(w.buf) {
		return append(out, w.buf[:w.size]...)
	}
	out = append(out, w.buf[w.head:]...)
	return append(out, w.buf[:w.head]...)
}

// Reset discards all retained accesses but keeps the capacity.
func (w *AccessWindow) Reset() {
	w.head, w.size = 0, 0
}
