package metrics_test

import (
	"fmt"

	"outlierlb/internal/metrics"
)

// A database thread logs events into its private buffer; full buffers
// flush as whole batches, so the collector's lock is touched once per
// batch, not once per event.
func ExampleLogBuffer() {
	c := metrics.NewCollector()
	buf := metrics.NewLogBuffer(3, metrics.Drain(c))

	id := metrics.ClassID{App: "shop", Class: "Report"}
	for i := 0; i < 7; i++ {
		buf.Append(metrics.Record{Kind: metrics.RecQuery, Class: id, Value: 0.010})
	}
	fmt.Printf("batched flushes: %d, still buffered: %d\n", buf.Flushes(), buf.Len())

	buf.Flush() // thread shutdown: deliver the partial batch
	snap := c.Snapshot(1.0)
	fmt.Printf("queries this interval: %.0f\n", snap[id].Get(metrics.Throughput))
	// Output:
	// batched flushes: 2, still buffered: 1
	// queries this interval: 7
}

// Each worker goroutine owns a private buffer draining into its own
// shard; Snapshot merges the shards on read. Here two workers log halves
// of one class's traffic and the merged interval sees all of it.
func ExampleShardedCollector() {
	sc := metrics.NewShardedCollector(2)
	id := metrics.ClassID{App: "shop", Class: "Checkout"}

	w0 := sc.Worker(16) // normally: one call per worker goroutine
	w1 := sc.Worker(16)
	for i := 0; i < 5; i++ {
		w0.Append(metrics.Record{Kind: metrics.RecQuery, Class: id, Value: 0.010})
		w1.Append(metrics.Record{Kind: metrics.RecQuery, Class: id, Value: 0.030})
	}
	w0.Flush()
	w1.Flush()

	stats := sc.SnapshotStats(1.0)[id]
	fmt.Printf("queries: %d, mean latency: %.3fs\n", stats.Latency.Count, stats.Latency.Mean)
	// Output:
	// queries: 10, mean latency: 0.020s
}
