package metrics

import (
	"math"
	"sort"
)

// Histogram accumulates latency samples into logarithmic buckets for
// cheap, bounded-memory percentile estimates. Buckets span 100 µs to
// ~100 s with ~15% resolution; the zero value is NOT ready — use
// NewHistogram.
type Histogram struct {
	counts []int64
	total  int64
	sum    float64
	min    float64
	max    float64
}

const (
	histMin    = 1e-4 // 100 µs
	histBase   = 1.15 // ~15% bucket growth
	histBucket = 100  // covers up to histMin * histBase^99 ≈ 110 s
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]int64, histBucket), min: math.Inf(1)}
}

func bucketOf(v float64) int {
	if v <= histMin {
		return 0
	}
	b := int(math.Log(v/histMin) / math.Log(histBase))
	if b >= histBucket {
		b = histBucket - 1
	}
	return b
}

// bucketUpper reports the upper bound of bucket b.
func bucketUpper(b int) float64 {
	return histMin * math.Pow(histBase, float64(b+1))
}

// Observe records one latency sample in seconds. Negative samples are
// clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean reports the exact sample mean (tracked outside the buckets).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Sum reports the exact sum of all samples (tracked outside the buckets).
func (h *Histogram) Sum() float64 { return h.sum }

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := NewHistogram()
	c.Merge(h)
	return c
}

// Min and Max report the exact extremes.
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observed sample.
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the bucket containing the q·total-th sample — a ≤15% overestimate by
// construction, which is the safe direction for SLA checking.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	var seen int64
	for b, n := range h.counts {
		seen += n
		if seen >= rank {
			if b == histBucket-1 {
				// The top bucket is open-ended; the exact maximum is the
				// only sound bound there.
				return h.max
			}
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// CumulativeLE folds the histogram's internal log buckets onto an
// externally chosen ladder of upper bounds (ascending), returning the
// cumulative count of samples at or below each bound — the shape a
// Prometheus `le`-bucketed histogram exposes. Each internal bucket's
// samples are attributed to the first ladder bound ≥ the bucket's upper
// edge (the conservative direction, consistent with Quantile); samples
// above the last bound are only in the implicit +Inf bucket, i.e.
// Count().
func (h *Histogram) CumulativeLE(bounds []float64) []int64 {
	out := make([]int64, len(bounds))
	for b, n := range h.counts {
		if n == 0 {
			continue
		}
		upper := bucketUpper(b)
		if b == histBucket-1 && h.max > upper {
			// The top bucket is open-ended; place its samples by the
			// exact maximum instead of the nominal edge.
			upper = h.max
		}
		i := sort.SearchFloat64s(bounds, upper)
		for ; i < len(bounds); i++ {
			out[i] += n
		}
	}
	return out
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, n := range other.counts {
		h.counts[b] += n
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
	h.min = math.Inf(1)
}

// Percentiles is a convenience for rendering several quantiles at once,
// returned in the same order as the requested qs.
func (h *Histogram) Percentiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	// Sorting is unnecessary for correctness (Quantile is O(buckets))
	// but keeps the common call Percentiles(0.5, 0.95, 0.99) cheap and
	// predictable.
	idx := make([]int, len(qs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return qs[idx[a]] < qs[idx[b]] })
	for _, i := range idx {
		out[i] = h.Quantile(qs[i])
	}
	return out
}
