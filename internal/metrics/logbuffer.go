package metrics

// This file models the paper's low-overhead logging design (§4): "To avoid
// locking overhead, we create a private logging buffer per thread. We log
// the specified counts, statistics and unique page accesses per query
// class. Finally, we flush the logs to disk only when the buffer is full
// or if the thread is being shutdown."

// RecordKind distinguishes the events written to a log buffer.
type RecordKind uint8

// The event kinds a database thread logs.
const (
	RecQuery     RecordKind = iota // a completed query; Value = latency seconds
	RecAccess                      // a page access; Value = page number, Miss set
	RecIO                          // an I/O block request batch; Value = count
	RecReadAhead                   // a prefetch batch; Value = count
	RecLockWait                    // a lock acquisition; Value = wait seconds
)

// Record is one logged event. Producers that accumulate into the same
// collector for many records of one class can stamp Slot (obtained once
// per class from Collector.SlotFor or ShardedCollector.SlotFor) to skip
// the per-record class-map lookup on the accumulation path; a zero Slot
// always falls back to the map.
type Record struct {
	Kind  RecordKind
	Miss  bool
	Slot  Slot
	Class ClassID
	Value float64
}

// LogBuffer is a fixed-capacity private logging buffer. Appends never
// block and never allocate once the buffer is constructed; when the buffer
// fills, the flush callback receives the batch and the buffer resets.
//
// A LogBuffer is single-owner by design — it is the paper's per-thread
// private buffer, so exactly one goroutine may Append/Flush, and the
// flush callback runs synchronously on that goroutine. Concurrency comes
// from giving each producer its own buffer (see ShardedCollector.Worker),
// never from sharing one.
type LogBuffer struct {
	buf     []Record
	flushFn func([]Record)
	flushes int
}

// NewLogBuffer returns a buffer of the given capacity (minimum 1) that
// calls flush with each full batch. The slice passed to flush is only
// valid for the duration of the call.
func NewLogBuffer(capacity int, flush func([]Record)) *LogBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &LogBuffer{buf: make([]Record, 0, capacity), flushFn: flush}
}

// Append logs one record, flushing first if the buffer is full.
func (b *LogBuffer) Append(r Record) {
	if len(b.buf) == cap(b.buf) {
		b.Flush()
	}
	b.buf = append(b.buf, r)
}

// Flush delivers any buffered records to the flush callback and resets the
// buffer. Flushing an empty buffer is a no-op.
func (b *LogBuffer) Flush() {
	if len(b.buf) == 0 {
		return
	}
	if b.flushFn != nil {
		b.flushFn(b.buf)
	}
	b.buf = b.buf[:0]
	b.flushes++
}

// Len reports the number of records currently buffered.
func (b *LogBuffer) Len() int { return len(b.buf) }

// Flushes reports how many non-empty flushes have occurred, which tests
// use to verify the batching behaviour.
func (b *LogBuffer) Flushes() int { return b.flushes }

// Drain applies a batch of records to a collector. It is the standard
// flush target wiring a per-thread buffer to the engine's collector; the
// whole batch is folded in under a single lock acquisition.
func Drain(c *Collector) func([]Record) {
	return c.Apply
}
