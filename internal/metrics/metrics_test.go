package metrics

import (
	"testing"
	"testing/quick"
)

var (
	best = ClassID{App: "tpcw", Class: "BestSeller"}
	newp = ClassID{App: "tpcw", Class: "NewProducts"}
	sibr = ClassID{App: "rubis", Class: "SearchItemsByRegion"}
)

func TestCollectorSnapshotComputesRates(t *testing.T) {
	c := NewCollector()
	c.RecordQuery(best, 0.5)
	c.RecordQuery(best, 1.5)
	for i := 0; i < 10; i++ {
		c.RecordAccess(best, i%2 == 0) // 5 misses
	}
	c.RecordIO(best, 4)
	c.RecordReadAhead(best, 2)

	snap := c.Snapshot(2.0)
	v, ok := snap[best]
	if !ok {
		t.Fatal("BestSeller missing from snapshot")
	}
	if v.Get(Latency) != 1.0 {
		t.Errorf("latency = %v, want 1.0", v.Get(Latency))
	}
	if v.Get(Throughput) != 1.0 {
		t.Errorf("throughput = %v, want 1.0 (2 queries / 2s)", v.Get(Throughput))
	}
	if v.Get(PageAccesses) != 5.0 {
		t.Errorf("page accesses = %v, want 5.0/s", v.Get(PageAccesses))
	}
	if v.Get(BufferMisses) != 2.5 {
		t.Errorf("misses = %v, want 2.5/s", v.Get(BufferMisses))
	}
	if v.Get(IORequests) != 2.0 {
		t.Errorf("io = %v, want 2.0/s", v.Get(IORequests))
	}
	if v.Get(ReadAhead) != 1.0 {
		t.Errorf("readahead = %v, want 1.0/s", v.Get(ReadAhead))
	}
}

func TestCollectorSnapshotResets(t *testing.T) {
	c := NewCollector()
	c.RecordQuery(best, 1)
	c.Snapshot(1)
	snap := c.Snapshot(1)
	if v := snap[best]; v.Get(Throughput) != 0 {
		t.Errorf("second snapshot not reset: throughput = %v", v.Get(Throughput))
	}
}

func TestCollectorIdleClassStillReported(t *testing.T) {
	c := NewCollector()
	c.RecordQuery(best, 1)
	c.Snapshot(1)
	snap := c.Snapshot(1)
	if _, ok := snap[best]; !ok {
		t.Fatal("idle class dropped from snapshot")
	}
}

func TestCollectorNonPositiveIntervalPanics(t *testing.T) {
	for _, interval := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Snapshot(%v) did not panic", interval)
				}
			}()
			c := NewCollector()
			c.RecordQuery(best, 1)
			c.Snapshot(interval)
		}()
	}
}

func TestCollectorSnapshotStatsPercentiles(t *testing.T) {
	c := NewCollector()
	// 97 fast queries and 3 slow ones: p50/p95 stay near 10ms, p99 and
	// max must surface the tail that the average hides.
	for i := 0; i < 97; i++ {
		c.RecordQuery(best, 0.010)
	}
	for i := 0; i < 3; i++ {
		c.RecordQuery(best, 2.0)
	}
	stats := c.SnapshotStats(10)
	s, ok := stats[best]
	if !ok {
		t.Fatal("BestSeller missing from stats snapshot")
	}
	lat := s.Latency
	if lat.Count != 100 {
		t.Fatalf("count = %d, want 100", lat.Count)
	}
	if lat.P50 > 0.02 {
		t.Errorf("p50 = %v, want ≈0.01", lat.P50)
	}
	if lat.P99 < 1.0 || lat.Max != 2.0 {
		t.Errorf("tail lost: p99 = %v, max = %v", lat.P99, lat.Max)
	}
	if lat.P95 > lat.P99 || lat.P50 > lat.P95 {
		t.Errorf("quantiles not monotone: %+v", lat)
	}
	if s.Hist == nil || s.Hist.Count() != 100 {
		t.Error("stats snapshot missing histogram copy")
	}
	// The vector view must agree with the summary's mean.
	if got, want := s.Vector.Get(Latency), lat.Mean; got != want {
		t.Errorf("vector latency %v != summary mean %v", got, want)
	}
	// Idle interval afterwards: summary resets, class still reported.
	stats = c.SnapshotStats(10)
	if s := stats[best]; s.Latency.Count != 0 || s.Hist != nil {
		t.Errorf("latency summary not reset: %+v", s.Latency)
	}
}

func TestCollectorTracksMultipleClasses(t *testing.T) {
	c := NewCollector()
	c.RecordQuery(best, 1)
	c.RecordQuery(newp, 2)
	c.RecordQuery(sibr, 3)
	if got := len(c.Classes()); got != 3 {
		t.Fatalf("Classes() = %d entries, want 3", got)
	}
	snap := c.Snapshot(1)
	if snap[newp].Get(Latency) != 2 || snap[sibr].Get(Latency) != 3 {
		t.Error("per-class latency mixed up between classes")
	}
}

func TestMetricStrings(t *testing.T) {
	want := map[Metric]string{
		Latency: "latency", Throughput: "throughput", BufferMisses: "misses",
		PageAccesses: "page_accesses", IORequests: "io_requests", ReadAhead: "read_ahead",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if Metric(99).String() != "metric(99)" {
		t.Errorf("out-of-range metric string = %q", Metric(99).String())
	}
}

func TestMemoryMetricsMatchPaper(t *testing.T) {
	// §3.3.1: "outlier detection on the memory related counters, such as
	// page accesses, page misses and read-ahead".
	want := map[Metric]bool{PageAccesses: true, BufferMisses: true, ReadAhead: true}
	if len(MemoryMetrics) != len(want) {
		t.Fatalf("MemoryMetrics = %v", MemoryMetrics)
	}
	for _, m := range MemoryMetrics {
		if !want[m] {
			t.Errorf("unexpected memory metric %v", m)
		}
	}
}

func TestLogBufferFlushesWhenFull(t *testing.T) {
	var flushed [][]Record
	b := NewLogBuffer(3, func(batch []Record) {
		cp := make([]Record, len(batch))
		copy(cp, batch)
		flushed = append(flushed, cp)
	})
	for i := 0; i < 7; i++ {
		b.Append(Record{Kind: RecAccess, Class: best, Value: float64(i)})
	}
	if len(flushed) != 2 {
		t.Fatalf("flushes = %d, want 2 (two full batches of 3)", len(flushed))
	}
	if b.Len() != 1 {
		t.Fatalf("buffered = %d, want 1 leftover", b.Len())
	}
	b.Flush()
	if len(flushed) != 3 || len(flushed[2]) != 1 {
		t.Fatalf("final flush wrong: %d batches", len(flushed))
	}
	b.Flush() // empty flush is a no-op
	if b.Flushes() != 3 {
		t.Fatalf("Flushes() = %d, want 3", b.Flushes())
	}
}

func TestLogBufferDrainIntoCollector(t *testing.T) {
	c := NewCollector()
	b := NewLogBuffer(2, Drain(c))
	b.Append(Record{Kind: RecQuery, Class: best, Value: 0.25})
	b.Append(Record{Kind: RecAccess, Class: best, Value: 7, Miss: true})
	b.Append(Record{Kind: RecIO, Class: best, Value: 3})
	b.Append(Record{Kind: RecReadAhead, Class: best, Value: 5})
	b.Flush()
	snap := c.Snapshot(1)
	v := snap[best]
	if v.Get(Latency) != 0.25 || v.Get(BufferMisses) != 1 || v.Get(IORequests) != 3 || v.Get(ReadAhead) != 5 {
		t.Fatalf("drained vector wrong: %+v", v)
	}
}

func TestAccessWindowOrderAndEviction(t *testing.T) {
	w := NewAccessWindow(4)
	for i := uint64(1); i <= 6; i++ {
		w.Add(i)
	}
	got := w.Snapshot()
	want := []uint64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
	if w.Total() != 6 {
		t.Fatalf("Total = %d, want 6", w.Total())
	}
	w.Reset()
	if w.Len() != 0 || len(w.Snapshot()) != 0 {
		t.Fatal("Reset did not clear window")
	}
}

func TestAccessWindowPartialFill(t *testing.T) {
	w := NewAccessWindow(10)
	w.Add(42)
	w.Add(43)
	got := w.Snapshot()
	if len(got) != 2 || got[0] != 42 || got[1] != 43 {
		t.Fatalf("partial snapshot = %v", got)
	}
}

func TestAccessWindowProperty(t *testing.T) {
	// The snapshot is always the last min(n, cap) values in order.
	f := func(vals []uint64) bool {
		const capacity = 8
		w := NewAccessWindow(capacity)
		for _, v := range vals {
			w.Add(v)
		}
		got := w.Snapshot()
		start := 0
		if len(vals) > capacity {
			start = len(vals) - capacity
		}
		want := vals[start:]
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
