// Package metrics implements the statistics-collection layer of the paper
// (§3.3): lightweight per-query-class monitoring of latency, throughput,
// buffer-pool misses, page accesses, I/O block requests and read-ahead
// (prefetch) requests, plus a window of the most recent page accesses per
// query class.
//
// Collection is tied to query class contexts: every sample carries the
// query class it belongs to, and Snapshot produces one metric vector per
// class for each measurement interval.
//
// # Concurrency and ownership
//
// The package mirrors the paper's §4 design — "to avoid locking overhead,
// we create a private logging buffer per thread" — with three layers:
//
//   - LogBuffer is strictly single-owner: one goroutine appends, and the
//     flush callback runs on that same goroutine. It is the lock-free
//     per-thread buffer of the paper.
//   - Collector is safe for concurrent use. Writers should batch through
//     a LogBuffer whose flush target is Collector.Apply, which takes the
//     internal lock once per batch rather than once per record. Snapshot
//     and SnapshotStats swap double-buffered accumulator maps under the
//     lock in O(classes) pointer operations and do all rate computation
//     outside it, so readers never stall writers for the duration of a
//     snapshot.
//   - ShardedCollector removes even the per-batch lock contention: each
//     worker goroutine owns a private LogBuffer draining into its own
//     shard (a Collector nobody else appends to), and the merge-on-read
//     snapshot combines shards. The append path shares no mutable state
//     between workers, which is what lets it scale with GOMAXPROCS (see
//     BenchmarkCollectorParallel at the repository root).
//
// AccessWindow and Histogram are plain single-owner data structures; the
// concurrent pipeline in internal/engine routes each query class to one
// stat-executor goroutine so every window keeps exactly one writer.
// internal/core reads snapshots on the simulation goroutine after the
// engine has flushed (or, in concurrent mode, barriered) its producers.
package metrics

import (
	"fmt"
	"sync"
)

// Metric identifies one of the per-query-class performance metrics the
// system monitors.
type Metric int

// The monitored metrics, in the order the paper lists them. LockWait
// extends the paper's set with the lock-contention counter its §7 future
// work calls for.
const (
	Latency      Metric = iota // average query latency (seconds)
	Throughput                 // completed queries per second
	BufferMisses               // buffer-pool misses per second
	PageAccesses               // logical page accesses per second
	IORequests                 // I/O block requests per second
	ReadAhead                  // prefetch (read-ahead) requests per second
	LockWait                   // seconds spent waiting for locks, per second
	numMetrics
)

// NumMetrics is the number of distinct monitored metrics.
const NumMetrics = int(numMetrics)

var metricNames = [...]string{
	Latency:      "latency",
	Throughput:   "throughput",
	BufferMisses: "misses",
	PageAccesses: "page_accesses",
	IORequests:   "io_requests",
	ReadAhead:    "read_ahead",
	LockWait:     "lock_wait",
}

func (m Metric) String() string {
	if m < 0 || int(m) >= NumMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// MemoryMetrics lists the "memory related counters" of §3.3.1 used to flag
// problem query classes: page accesses, buffer-pool misses and read-ahead.
var MemoryMetrics = []Metric{PageAccesses, BufferMisses, ReadAhead}

// Vector holds one value per metric for a single query class over one
// measurement interval. The zero value is all zeros and ready to use.
type Vector [NumMetrics]float64

// Get returns the value for m.
func (v Vector) Get(m Metric) float64 { return v[m] }

// Set assigns the value for m.
func (v *Vector) Set(m Metric, x float64) { v[m] = x }

// ClassID identifies a query class context: a set of query instances with
// the same template but different arguments, belonging to one application.
type ClassID struct {
	App   string // application name, e.g. "tpcw"
	Class string // query template name, e.g. "BestSeller"
}

func (c ClassID) String() string { return c.App + "/" + c.Class }

// classAccum accumulates raw counters for one query class during the
// current measurement interval. The latency histogram survives resets
// (cleared, not reallocated) so steady-state snapshots allocate nothing
// per class.
type classAccum struct {
	queries     int64
	latencySum  float64
	misses      int64
	accesses    int64
	ioReqs      int64
	readAhead   int64
	lockWaitSum float64
	latencies   *Histogram
}

func (a *classAccum) reset() {
	h := a.latencies
	*a = classAccum{latencies: h}
	if h != nil {
		h.Reset()
	}
}

// fold accumulates one record. The caller has already resolved which
// class accumulator the record belongs to.
func (a *classAccum) fold(r Record) {
	switch r.Kind {
	case RecQuery:
		a.queries++
		a.latencySum += r.Value
		if a.latencies == nil {
			a.latencies = NewHistogram()
		}
		a.latencies.Observe(r.Value)
	case RecAccess:
		a.accesses++
		if r.Miss {
			a.misses++
		}
	case RecIO:
		a.ioReqs += int64(r.Value)
	case RecReadAhead:
		a.readAhead += int64(r.Value)
	case RecLockWait:
		a.lockWaitSum += r.Value
	}
}

// Slot is a dense per-collector class index handed out by SlotFor. A
// slotted Record skips the per-record map lookup on the accumulation hot
// path in favour of a slice index. The zero Slot means "unassigned" and
// always falls back to the class map, so producers that never learn
// their slot keep working unchanged.
//
// A Slot is only meaningful to the Collector that issued it: records
// carrying a slot must be applied to exactly that collector (for a
// ShardedCollector, the class's ShardIndex shard). Applying a foreign
// slot silently credits another class.
type Slot int32

// Collector accumulates per-query-class samples and produces per-interval
// metric vectors. It is safe for concurrent use: record methods take an
// internal mutex (Apply amortizes it over a whole batch), and snapshots
// swap double-buffered accumulator maps under the lock — an O(classes)
// pointer exchange — then compute all rates outside it, so a reader
// closing an interval never stalls writers behind per-class histogram
// work.
type Collector struct {
	mu    sync.Mutex
	accum map[ClassID]*classAccum
	// spare is the detached buffer of the previous snapshot, kept with
	// zeroed counters (and every known class's entry) so the next swap
	// reuses it instead of reallocating — the "double" of the double
	// buffer.
	spare map[ClassID]*classAccum
	// slots maps each class to its dense SlotFor index; assignments are
	// permanent for the collector's lifetime.
	slots map[ClassID]Slot
	// bySlot caches slot→accumulator for the *current* front buffer. It
	// is invalidated (cleared, not reallocated) on every buffer swap and
	// refilled lazily by accumFor, bounding the cost of the cache to one
	// map lookup per class per interval.
	bySlot []*classAccum
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{accum: make(map[ClassID]*classAccum)}
}

// get returns the accumulator for id; callers must hold c.mu.
func (c *Collector) get(id ClassID) *classAccum {
	a := c.accum[id]
	if a == nil {
		a = &classAccum{}
		c.accum[id] = a
	}
	return a
}

// SlotFor returns the dense accumulation slot for id, assigning one on
// first use. Producers resolve the slot once per class and stamp it on
// their Records so the accumulation hot path indexes a slice instead of
// hashing the ClassID per record. Slots are never reused or invalidated.
func (c *Collector) SlotFor(id ClassID) Slot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.slots[id]; ok {
		return s
	}
	if c.slots == nil {
		c.slots = make(map[ClassID]Slot)
	}
	s := Slot(len(c.slots) + 1)
	c.slots[id] = s
	return s
}

// accumFor resolves the accumulator for r, preferring the record's
// pre-resolved slot over the class-map lookup; callers must hold c.mu.
// The bySlot cache is cleared on every buffer swap, so a slotted class
// pays the map exactly once per interval and a slice index thereafter.
func (c *Collector) accumFor(r Record) *classAccum {
	if s := int(r.Slot); s > 0 {
		if s <= len(c.bySlot) {
			if a := c.bySlot[s-1]; a != nil {
				return a
			}
		}
		a := c.get(r.Class)
		for len(c.bySlot) < s {
			c.bySlot = append(c.bySlot, nil)
		}
		c.bySlot[s-1] = a
		return a
	}
	return c.get(r.Class)
}

// apply folds one record into the accumulators; callers must hold c.mu.
func (c *Collector) apply(r Record) {
	c.accumFor(r).fold(r)
}

// Apply folds a batch of records into the collector under one lock
// acquisition. It is the flush target wiring a private LogBuffer to a
// collector (see Drain) and the reason batched producers see the mutex
// once per buffer fill rather than once per event.
func (c *Collector) Apply(batch []Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range batch {
		c.apply(r)
	}
}

// RecordQuery records a completed query of class id with the given latency
// in seconds.
func (c *Collector) RecordQuery(id ClassID, latency float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apply(Record{Kind: RecQuery, Class: id, Value: latency})
}

// RecordAccess records a logical page access; miss reports whether it
// missed in the buffer pool.
func (c *Collector) RecordAccess(id ClassID, miss bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apply(Record{Kind: RecAccess, Class: id, Miss: miss})
}

// RecordLockWait records seconds spent waiting for a lock on behalf of
// id.
func (c *Collector) RecordLockWait(id ClassID, seconds float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apply(Record{Kind: RecLockWait, Class: id, Value: seconds})
}

// RecordIO records n I/O block requests issued on behalf of id.
func (c *Collector) RecordIO(id ClassID, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apply(Record{Kind: RecIO, Class: id, Value: float64(n)})
}

// RecordReadAhead records n read-ahead (prefetch) requests issued on
// behalf of id.
func (c *Collector) RecordReadAhead(id ClassID, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apply(Record{Kind: RecReadAhead, Class: id, Value: float64(n)})
}

// Queries reports the number of completed queries recorded for id in the
// current interval.
func (c *Collector) Queries(id ClassID) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.accum[id]; a != nil {
		return a.queries
	}
	return 0
}

// LatencySummary condenses one query class's per-query latency
// distribution over a measurement interval. Quantiles come from the
// class's logarithmic histogram (≤15% overestimates — the safe direction
// for SLA work); Mean and Max are exact.
type LatencySummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// ClassStats couples a class's per-interval metric vector with its
// latency distribution — the Vector-adjacent snapshot data consumers use
// when average latency alone is not enough.
type ClassStats struct {
	Vector  Vector
	Latency LatencySummary
	// Hist is an independent copy of the interval's latency histogram
	// (nil when the class completed no queries); receivers may retain
	// and merge it.
	Hist *Histogram
}

// checkInterval rejects non-positive measurement intervals. Rates divided
// by a zero or negative interval are silently wrong in every consumer
// (outlier detection would compare garbage ratios), so this is a
// programming error worth a panic rather than a coerced default.
func checkInterval(interval float64) {
	if interval <= 0 {
		panic(fmt.Sprintf("metrics: Snapshot requires a positive interval in seconds, got %v", interval))
	}
}

// Snapshot converts the counters accumulated over an interval of the given
// length (seconds) into one metric vector per query class, then resets the
// collector for the next interval. Classes with no activity yield a zero
// vector and are still reported, so stable-state signatures keep an entry
// for idle classes. A non-positive interval panics.
func (c *Collector) Snapshot(interval float64) map[ClassID]Vector {
	stats := c.snapshotStats(interval, false)
	out := make(map[ClassID]Vector, len(stats))
	for id, s := range stats {
		out[id] = s.Vector
	}
	return out
}

// SnapshotStats is Snapshot with the per-class latency distributions
// attached. Like Snapshot it resets the collector; call one or the other
// per interval, not both.
func (c *Collector) SnapshotStats(interval float64) map[ClassID]ClassStats {
	return c.snapshotStats(interval, true)
}

// snapshotStats implements both snapshot flavours; withHist controls
// whether per-class histogram copies are made (an allocation the plain
// vector path should not pay). The lock is held only for the buffer
// swap; the per-class computation runs on the detached buffer.
func (c *Collector) snapshotStats(interval float64, withHist bool) map[ClassID]ClassStats {
	checkInterval(interval)
	taken := c.takeAccums()
	out := computeStats(taken, interval, withHist)
	c.releaseAccums(taken)
	return out
}

// takeAccums detaches the current accumulator map and installs the spare
// in its place. Every class known to the outgoing buffer gets an entry in
// the incoming one, so idle classes keep appearing in snapshots (Snapshot
// promises a zero vector for them) even though the maps alternate.
func (c *Collector) takeAccums() map[ClassID]*classAccum {
	c.mu.Lock()
	defer c.mu.Unlock()
	front := c.accum
	back := c.spare
	if back == nil {
		back = make(map[ClassID]*classAccum, len(front))
	}
	for id := range front {
		if _, ok := back[id]; !ok {
			back[id] = &classAccum{}
		}
	}
	c.accum = back
	c.spare = nil
	// The slot cache points into the detached buffer; invalidate it so
	// slotted records re-resolve against the incoming one.
	clear(c.bySlot)
	return front
}

// releaseAccums zeroes a detached buffer and stores it as the spare for
// the next swap. Resetting happens outside the lock: histograms clear in
// O(buckets) per class, which writers should not wait behind.
func (c *Collector) releaseAccums(m map[ClassID]*classAccum) {
	for _, a := range m {
		a.reset()
	}
	c.mu.Lock()
	if c.spare == nil {
		c.spare = m
	}
	c.mu.Unlock()
}

// computeStats turns detached accumulators into per-class stats. It does
// not reset the accumulators.
func computeStats(accums map[ClassID]*classAccum, interval float64, withHist bool) map[ClassID]ClassStats {
	out := make(map[ClassID]ClassStats, len(accums))
	for id, a := range accums {
		var s ClassStats
		v := &s.Vector
		if a.queries > 0 {
			v[Latency] = a.latencySum / float64(a.queries)
			qs := a.latencies.Percentiles(0.5, 0.95, 0.99)
			s.Latency = LatencySummary{
				Count: a.queries,
				Mean:  a.latencies.Mean(),
				P50:   qs[0],
				P95:   qs[1],
				P99:   qs[2],
				Max:   a.latencies.Max(),
			}
			if withHist {
				s.Hist = a.latencies.Clone()
			}
		}
		v[Throughput] = float64(a.queries) / interval
		v[BufferMisses] = float64(a.misses) / interval
		v[PageAccesses] = float64(a.accesses) / interval
		v[IORequests] = float64(a.ioReqs) / interval
		v[ReadAhead] = float64(a.readAhead) / interval
		v[LockWait] = a.lockWaitSum / interval
		out[id] = s
	}
	return out
}

// Classes returns the identifiers currently tracked, in unspecified order.
func (c *Collector) Classes() []ClassID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ClassID, 0, len(c.accum))
	for id := range c.accum {
		out = append(out, id)
	}
	return out
}
