// Package metrics implements the statistics-collection layer of the paper
// (§3.3): lightweight per-query-class monitoring of latency, throughput,
// buffer-pool misses, page accesses, I/O block requests and read-ahead
// (prefetch) requests, plus a window of the most recent page accesses per
// query class.
//
// Collection is tied to query class contexts: every sample carries the
// query class it belongs to, and Snapshot produces one metric vector per
// class for each measurement interval.
package metrics

import "fmt"

// Metric identifies one of the per-query-class performance metrics the
// system monitors.
type Metric int

// The monitored metrics, in the order the paper lists them. LockWait
// extends the paper's set with the lock-contention counter its §7 future
// work calls for.
const (
	Latency      Metric = iota // average query latency (seconds)
	Throughput                 // completed queries per second
	BufferMisses               // buffer-pool misses per second
	PageAccesses               // logical page accesses per second
	IORequests                 // I/O block requests per second
	ReadAhead                  // prefetch (read-ahead) requests per second
	LockWait                   // seconds spent waiting for locks, per second
	numMetrics
)

// NumMetrics is the number of distinct monitored metrics.
const NumMetrics = int(numMetrics)

var metricNames = [...]string{
	Latency:      "latency",
	Throughput:   "throughput",
	BufferMisses: "misses",
	PageAccesses: "page_accesses",
	IORequests:   "io_requests",
	ReadAhead:    "read_ahead",
	LockWait:     "lock_wait",
}

func (m Metric) String() string {
	if m < 0 || int(m) >= NumMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// MemoryMetrics lists the "memory related counters" of §3.3.1 used to flag
// problem query classes: page accesses, buffer-pool misses and read-ahead.
var MemoryMetrics = []Metric{PageAccesses, BufferMisses, ReadAhead}

// Vector holds one value per metric for a single query class over one
// measurement interval. The zero value is all zeros and ready to use.
type Vector [NumMetrics]float64

// Get returns the value for m.
func (v Vector) Get(m Metric) float64 { return v[m] }

// Set assigns the value for m.
func (v *Vector) Set(m Metric, x float64) { v[m] = x }

// ClassID identifies a query class context: a set of query instances with
// the same template but different arguments, belonging to one application.
type ClassID struct {
	App   string // application name, e.g. "tpcw"
	Class string // query template name, e.g. "BestSeller"
}

func (c ClassID) String() string { return c.App + "/" + c.Class }

// classAccum accumulates raw counters for one query class during the
// current measurement interval. The latency histogram survives resets
// (cleared, not reallocated) so steady-state snapshots allocate nothing
// per class.
type classAccum struct {
	queries     int64
	latencySum  float64
	misses      int64
	accesses    int64
	ioReqs      int64
	readAhead   int64
	lockWaitSum float64
	latencies   *Histogram
}

func (a *classAccum) reset() {
	h := a.latencies
	*a = classAccum{latencies: h}
	if h != nil {
		h.Reset()
	}
}

// Collector accumulates per-query-class samples and produces per-interval
// metric vectors. It is not safe for concurrent use; in this codebase each
// simulated database engine owns one collector and the simulation is
// single-threaded (the paper's per-thread private logging buffers are
// modelled by LogBuffer).
type Collector struct {
	accum map[ClassID]*classAccum
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{accum: make(map[ClassID]*classAccum)}
}

func (c *Collector) get(id ClassID) *classAccum {
	a := c.accum[id]
	if a == nil {
		a = &classAccum{}
		c.accum[id] = a
	}
	return a
}

// RecordQuery records a completed query of class id with the given latency
// in seconds.
func (c *Collector) RecordQuery(id ClassID, latency float64) {
	a := c.get(id)
	a.queries++
	a.latencySum += latency
	if a.latencies == nil {
		a.latencies = NewHistogram()
	}
	a.latencies.Observe(latency)
}

// RecordAccess records a logical page access; miss reports whether it
// missed in the buffer pool.
func (c *Collector) RecordAccess(id ClassID, miss bool) {
	a := c.get(id)
	a.accesses++
	if miss {
		a.misses++
	}
}

// RecordLockWait records seconds spent waiting for a lock on behalf of
// id.
func (c *Collector) RecordLockWait(id ClassID, seconds float64) {
	c.get(id).lockWaitSum += seconds
}

// RecordIO records n I/O block requests issued on behalf of id.
func (c *Collector) RecordIO(id ClassID, n int) {
	c.get(id).ioReqs += int64(n)
}

// RecordReadAhead records n read-ahead (prefetch) requests issued on
// behalf of id.
func (c *Collector) RecordReadAhead(id ClassID, n int) {
	c.get(id).readAhead += int64(n)
}

// Queries reports the number of completed queries recorded for id in the
// current interval.
func (c *Collector) Queries(id ClassID) int64 {
	if a := c.accum[id]; a != nil {
		return a.queries
	}
	return 0
}

// LatencySummary condenses one query class's per-query latency
// distribution over a measurement interval. Quantiles come from the
// class's logarithmic histogram (≤15% overestimates — the safe direction
// for SLA work); Mean and Max are exact.
type LatencySummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// ClassStats couples a class's per-interval metric vector with its
// latency distribution — the Vector-adjacent snapshot data consumers use
// when average latency alone is not enough.
type ClassStats struct {
	Vector  Vector
	Latency LatencySummary
	// Hist is an independent copy of the interval's latency histogram
	// (nil when the class completed no queries); receivers may retain
	// and merge it.
	Hist *Histogram
}

// checkInterval rejects non-positive measurement intervals. Rates divided
// by a zero or negative interval are silently wrong in every consumer
// (outlier detection would compare garbage ratios), so this is a
// programming error worth a panic rather than a coerced default.
func checkInterval(interval float64) {
	if interval <= 0 {
		panic(fmt.Sprintf("metrics: Snapshot requires a positive interval in seconds, got %v", interval))
	}
}

// Snapshot converts the counters accumulated over an interval of the given
// length (seconds) into one metric vector per query class, then resets the
// collector for the next interval. Classes with no activity yield a zero
// vector and are still reported, so stable-state signatures keep an entry
// for idle classes. A non-positive interval panics.
func (c *Collector) Snapshot(interval float64) map[ClassID]Vector {
	stats := c.snapshotStats(interval, false)
	out := make(map[ClassID]Vector, len(stats))
	for id, s := range stats {
		out[id] = s.Vector
	}
	return out
}

// SnapshotStats is Snapshot with the per-class latency distributions
// attached. Like Snapshot it resets the collector; call one or the other
// per interval, not both.
func (c *Collector) SnapshotStats(interval float64) map[ClassID]ClassStats {
	return c.snapshotStats(interval, true)
}

// snapshotStats implements both snapshot flavours; withHist controls
// whether per-class histogram copies are made (an allocation the plain
// vector path should not pay).
func (c *Collector) snapshotStats(interval float64, withHist bool) map[ClassID]ClassStats {
	checkInterval(interval)
	out := make(map[ClassID]ClassStats, len(c.accum))
	for id, a := range c.accum {
		var s ClassStats
		v := &s.Vector
		if a.queries > 0 {
			v[Latency] = a.latencySum / float64(a.queries)
			qs := a.latencies.Percentiles(0.5, 0.95, 0.99)
			s.Latency = LatencySummary{
				Count: a.queries,
				Mean:  a.latencies.Mean(),
				P50:   qs[0],
				P95:   qs[1],
				P99:   qs[2],
				Max:   a.latencies.Max(),
			}
			if withHist {
				s.Hist = a.latencies.Clone()
			}
		}
		v[Throughput] = float64(a.queries) / interval
		v[BufferMisses] = float64(a.misses) / interval
		v[PageAccesses] = float64(a.accesses) / interval
		v[IORequests] = float64(a.ioReqs) / interval
		v[ReadAhead] = float64(a.readAhead) / interval
		v[LockWait] = a.lockWaitSum / interval
		out[id] = s
		a.reset()
	}
	return out
}

// Classes returns the identifiers currently tracked, in unspecified order.
func (c *Collector) Classes() []ClassID {
	out := make([]ClassID, 0, len(c.accum))
	for id := range c.accum {
		out = append(out, id)
	}
	return out
}
