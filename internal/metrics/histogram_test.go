package metrics

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []float64{0.1, 0.2, 0.3, 0.4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m < 0.249 || m > 0.251 {
		t.Fatalf("mean = %v", m)
	}
	if h.Min() != 0.1 || h.Max() != 0.4 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Against exact order statistics on a random sample: the log-bucket
	// estimate must overshoot by at most ~15% and never undershoot the
	// true quantile by more than a bucket.
	rng := rand.New(rand.NewSource(2))
	h := NewHistogram()
	samples := make([]float64, 20000)
	for i := range samples {
		v := rng.ExpFloat64() * 0.5
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		est := h.Quantile(q)
		if est < exact*0.85 || est > exact*1.35 {
			t.Errorf("q=%.2f: exact %.4f est %.4f", q, exact, est)
		}
	}
}

func TestHistogramQuantileNeverBelowEstimateDirection(t *testing.T) {
	// Bucket-upper-bound estimation biases high — the safe direction for
	// SLA checks. Verify on a deterministic sample.
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.01)
	}
	if est := h.Quantile(0.95); est < 0.95 {
		t.Fatalf("P95 estimate %.4f below true 0.95", est)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5) // clamped
	h.Observe(0)
	h.Observe(1e6) // beyond last bucket
	if h.Min() != 0 {
		t.Fatalf("min = %v", h.Min())
	}
	if h.Max() != 1e6 {
		t.Fatalf("max = %v", h.Max())
	}
	if q := h.Quantile(1); q != 1e6 {
		t.Fatalf("Q(1) = %v", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("Q(0) = %v", q)
	}
	if q := h.Quantile(2); q != 1e6 {
		t.Fatalf("Q(2) clamped = %v", q)
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(0.1)
	b.Observe(0.9)
	b.Observe(0.8)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0.1 || a.Max() != 0.9 {
		t.Fatalf("merged extremes = %v/%v", a.Min(), a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 {
		t.Fatal("Reset incomplete")
	}
	a.Observe(0.5)
	if a.Min() != 0.5 {
		t.Fatal("min not reset")
	}
}

func TestHistogramPercentilesOrderPreserved(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 0.001)
	}
	ps := h.Percentiles(0.99, 0.5, 0.9)
	if len(ps) != 3 {
		t.Fatalf("got %d results", len(ps))
	}
	if !(ps[1] <= ps[2] && ps[2] <= ps[0]) {
		t.Fatalf("percentiles out of order: %v", ps)
	}
}
