package metrics

// This file implements the concurrent half of the paper's §4 logging
// design. The paper's database threads each own a private logging buffer;
// here every producer goroutine owns a LogBuffer that drains into its own
// shard, so the append path touches no mutable state shared between
// producers. Snapshots merge the shards on read.

import (
	"hash/maphash"
	"sync/atomic"
)

// ShardedCollector fans per-class statistics across independent shards so
// concurrent producers never contend on the append path.
//
// Ownership rules:
//
//   - Each worker goroutine calls Worker (or WorkerFor) once to obtain a
//     private LogBuffer; only that goroutine may append to it. The buffer
//     drains into one shard, and because no two workers returned by
//     Worker share a shard until workers outnumber shards, appends are
//     uncontended.
//   - Snapshot and SnapshotStats may be called from any goroutine, at any
//     time, concurrently with appends. They swap each shard's
//     double-buffered accumulators (an O(classes) critical section per
//     shard), merge outside the locks, and reset the shards for the next
//     interval. Records sitting in a worker's private LogBuffer at
//     snapshot time are not lost — they surface in the next interval —
//     but callers that need a complete interval must have each worker
//     Flush first (internal/engine barriers its stat executors for
//     exactly this reason).
type ShardedCollector struct {
	shards []*Collector
	next   atomic.Uint32
	seed   maphash.Seed
}

// NewShardedCollector returns a collector with n shards (minimum 1).
func NewShardedCollector(n int) *ShardedCollector {
	if n < 1 {
		n = 1
	}
	s := &ShardedCollector{shards: make([]*Collector, n), seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i] = NewCollector()
	}
	return s
}

// Shards reports the shard count.
func (s *ShardedCollector) Shards() int { return len(s.shards) }

// Worker returns a private logging buffer of the given capacity for one
// producer goroutine, assigned to the next shard round-robin. Safe to
// call from any goroutine; the returned buffer is not.
func (s *ShardedCollector) Worker(capacity int) *LogBuffer {
	return s.WorkerFor(int(s.next.Add(1)-1), capacity)
}

// WorkerFor returns a private logging buffer draining into shard
// i % Shards(). Use it when the caller manages its own worker-to-shard
// assignment (internal/engine pins class-routed executors this way).
func (s *ShardedCollector) WorkerFor(i, capacity int) *LogBuffer {
	shard := s.shards[i%len(s.shards)]
	return NewLogBuffer(capacity, shard.Apply)
}

// ApplyTo folds a whole batch into shard i % Shards() under one lock
// acquisition — the batch analogue of WorkerFor, for callers that manage
// their own record batching. The same single-owner rule applies: give
// each concurrent caller its own shard index.
func (s *ShardedCollector) ApplyTo(i int, batch []Record) {
	s.shards[i%len(s.shards)].Apply(batch)
}

// ShardIndex maps a class to a stable shard (and hence worker) index.
// Routing every record of a class through one worker preserves the
// class's event order, which per-class access windows depend on.
func (s *ShardedCollector) ShardIndex(id ClassID) int {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(id.App)
	h.WriteByte(0)
	h.WriteString(id.Class)
	return int(h.Sum64() % uint64(len(s.shards)))
}

// SlotFor returns the dense accumulation slot for id in its home shard
// (shard ShardIndex(id)). The slot is only valid for records applied to
// that shard; internal/engine routes every class's batches by ShardIndex,
// so slotted records always land on the shard that issued the slot.
func (s *ShardedCollector) SlotFor(id ClassID) Slot {
	return s.shards[s.ShardIndex(id)].SlotFor(id)
}

// Snapshot merges every shard's counters accumulated over an interval of
// the given length (seconds) into one metric vector per query class,
// resetting the shards for the next interval. Semantics match
// Collector.Snapshot: idle classes yield zero vectors, a non-positive
// interval panics.
func (s *ShardedCollector) Snapshot(interval float64) map[ClassID]Vector {
	stats := s.snapshotStats(interval, false)
	out := make(map[ClassID]Vector, len(stats))
	for id, st := range stats {
		out[id] = st.Vector
	}
	return out
}

// SnapshotStats is Snapshot with per-class latency distributions
// attached. Like Snapshot it resets the shards; call one or the other per
// interval, not both.
func (s *ShardedCollector) SnapshotStats(interval float64) map[ClassID]ClassStats {
	return s.snapshotStats(interval, true)
}

func (s *ShardedCollector) snapshotStats(interval float64, withHist bool) map[ClassID]ClassStats {
	checkInterval(interval)
	// Detach every shard's front buffer first, then merge outside all
	// locks: the swap is the only moment a producer can be stalled.
	taken := make([]map[ClassID]*classAccum, len(s.shards))
	for i, sh := range s.shards {
		taken[i] = sh.takeAccums()
	}
	merged := make(map[ClassID]*classAccum)
	for _, m := range taken {
		for id, a := range m {
			d := merged[id]
			if d == nil {
				d = &classAccum{}
				merged[id] = d
			}
			d.queries += a.queries
			d.latencySum += a.latencySum
			d.misses += a.misses
			d.accesses += a.accesses
			d.ioReqs += a.ioReqs
			d.readAhead += a.readAhead
			d.lockWaitSum += a.lockWaitSum
			if a.latencies != nil && a.latencies.Count() > 0 {
				if d.latencies == nil {
					d.latencies = NewHistogram()
				}
				d.latencies.Merge(a.latencies)
			}
		}
	}
	out := computeStats(merged, interval, withHist)
	for i, sh := range s.shards {
		sh.releaseAccums(taken[i])
	}
	return out
}

// Classes returns the identifiers tracked across all shards, in
// unspecified order.
func (s *ShardedCollector) Classes() []ClassID {
	seen := make(map[ClassID]bool)
	var out []ClassID
	for _, sh := range s.shards {
		for _, id := range sh.Classes() {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}
