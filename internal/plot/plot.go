// Package plot renders small ASCII charts for the command-line tools:
// time series (Figure 3's load/allocation/latency panels) and bar-style
// curves, with no dependencies beyond the standard library.
//
// Concurrency: rendering functions are pure (inputs to string), so the
// package is trivially safe from any goroutine.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a time-series chart.
type Series struct {
	Name   string
	Values []float64
}

// TimeSeries renders series against a shared x axis as a height-rows
// ASCII chart. Each series uses its own glyph; y is scaled to the global
// min/max. Values slices shorter than xs are padded with NaN (gaps).
func TimeSeries(xs []float64, series []Series, width, height int) string {
	if len(xs) == 0 || len(series) == 0 {
		return "(no data)\n"
	}
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#'}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(i int) int {
		if len(xs) == 1 {
			return 0
		}
		return i * (width - 1) / (len(xs) - 1)
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := height - 1 - int(math.Round(frac*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := 0; i < len(xs) && i < len(s.Values); i++ {
			v := s.Values[i]
			if math.IsNaN(v) {
				continue
			}
			grid[row(v)][col(i)] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%10.3g ┤%s\n", hi, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%10s ┤%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.3g ┤%s\n", lo, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s  └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "%10s   %-12.4g%*.4g\n", "", xs[0], width-12, xs[len(xs)-1])
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	fmt.Fprintf(&b, "%10s   %s\n", "", strings.Join(legend, "   "))
	return b.String()
}

// Bars renders label/value pairs as horizontal bars scaled to the widest
// value.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) == 0 || len(labels) != len(values) {
		return "(no data)\n"
	}
	if width < 10 {
		width = 10
	}
	max := 0.0
	wLabel := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > wLabel {
			wLabel = len(labels[i])
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	for i, v := range values {
		n := int(math.Round(v / max * float64(width)))
		fmt.Fprintf(&b, "%-*s %s %.4g\n", wLabel, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}
