package plot

import (
	"math"
	"strings"
	"testing"
)

func TestTimeSeriesRenders(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	out := TimeSeries(xs, []Series{
		{Name: "latency", Values: []float64{0.1, 0.2, 0.9, 0.3, 0.1}},
		{Name: "machines", Values: []float64{1, 1, 2, 2, 1}},
	}, 40, 8)
	if !strings.Contains(out, "latency") || !strings.Contains(out, "machines") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8+3 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestTimeSeriesDegenerate(t *testing.T) {
	if out := TimeSeries(nil, nil, 40, 8); !strings.Contains(out, "no data") {
		t.Fatal("empty input not handled")
	}
	out := TimeSeries([]float64{1}, []Series{{Name: "x", Values: []float64{5}}}, 2, 2)
	if !strings.Contains(out, "x") {
		t.Fatalf("single point failed:\n%s", out)
	}
	// All-NaN series.
	out = TimeSeries([]float64{1, 2}, []Series{{Name: "x", Values: []float64{math.NaN(), math.NaN()}}}, 20, 4)
	if !strings.Contains(out, "no data") {
		t.Fatal("all-NaN not handled")
	}
	// Constant series (zero range).
	out = TimeSeries([]float64{1, 2}, []Series{{Name: "x", Values: []float64{3, 3}}}, 20, 4)
	if !strings.Contains(out, "x") {
		t.Fatal("constant series failed")
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"shared", "partitioned"}, []float64{89.0, 97.8}, 30)
	if !strings.Contains(out, "shared") || !strings.Contains(out, "97.8") {
		t.Fatalf("bars missing content:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[0], "█") >= strings.Count(lines[1], "█") {
		t.Fatalf("bar lengths not ordered:\n%s", out)
	}
	if out := Bars(nil, nil, 10); !strings.Contains(out, "no data") {
		t.Fatal("empty bars not handled")
	}
	if out := Bars([]string{"a"}, []float64{0}, 10); !strings.Contains(out, "a") {
		t.Fatal("zero values broke bars")
	}
}
