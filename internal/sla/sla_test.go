package sla

import "testing"

func TestMet(t *testing.T) {
	s := Default()
	if !s.Met(0.5, 10) {
		t.Error("compliant latency flagged")
	}
	if s.Met(1.5, 10) {
		t.Error("violation not flagged")
	}
	if !s.Met(99, 0) {
		t.Error("empty interval should be vacuously compliant")
	}
	if !s.Met(1.0, 10) {
		t.Error("boundary latency should comply")
	}
}

func TestTrackerIntervals(t *testing.T) {
	tr := NewTracker(SLA{MaxAvgLatency: 1.0})
	tr.Observe(0.5)
	tr.Observe(0.7)
	iv := tr.CloseInterval(0, 10)
	if !iv.Met || iv.Queries != 2 {
		t.Fatalf("interval = %+v", iv)
	}
	if iv.AvgLatency != 0.6 {
		t.Fatalf("avg = %v, want 0.6", iv.AvgLatency)
	}
	if iv.Throughput != 0.2 {
		t.Fatalf("throughput = %v, want 0.2", iv.Throughput)
	}

	tr.Observe(3.0)
	iv2 := tr.CloseInterval(10, 20)
	if iv2.Met {
		t.Fatal("violating interval marked stable")
	}
	if len(tr.History()) != 2 {
		t.Fatalf("history = %d intervals", len(tr.History()))
	}
	last, ok := tr.LastStable()
	if !ok || last.End != 10 {
		t.Fatalf("LastStable = %+v, %v", last, ok)
	}
}

func TestTrackerResetsBetweenIntervals(t *testing.T) {
	tr := NewTracker(Default())
	tr.Observe(2.0)
	tr.CloseInterval(0, 1)
	iv := tr.CloseInterval(1, 2)
	if iv.Queries != 0 || iv.AvgLatency != 0 {
		t.Fatalf("accumulators leaked: %+v", iv)
	}
	if !iv.Met {
		t.Fatal("idle interval should be compliant")
	}
}

func TestLastStableNone(t *testing.T) {
	tr := NewTracker(Default())
	tr.Observe(5)
	tr.CloseInterval(0, 1)
	if _, ok := tr.LastStable(); ok {
		t.Fatal("LastStable found a stable interval among violations")
	}
	// Idle intervals don't count as stable (no activity to sign).
	tr.CloseInterval(1, 2)
	if _, ok := tr.LastStable(); ok {
		t.Fatal("idle interval treated as stable")
	}
}

func TestZeroLengthInterval(t *testing.T) {
	tr := NewTracker(Default())
	tr.Observe(0.1)
	iv := tr.CloseInterval(5, 5)
	if iv.Throughput != 0 {
		t.Fatalf("zero-length interval throughput = %v", iv.Throughput)
	}
}

func TestString(t *testing.T) {
	if got := Default().String(); got != "avg latency ≤ 1.00s" {
		t.Fatalf("String = %q", got)
	}
}

func TestP95SLA(t *testing.T) {
	s := SLA{MaxAvgLatency: 1.0, MaxP95Latency: 0.5}
	tr := NewTracker(s)
	// 100 fast queries and 10 slow ones: average fine, P95 violated.
	for i := 0; i < 100; i++ {
		tr.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(2.0)
	}
	iv := tr.CloseInterval(0, 10)
	if iv.Met {
		t.Fatalf("tail violation not flagged: avg=%.3f p95=%.3f", iv.AvgLatency, iv.P95Latency)
	}
	if iv.P95Latency < 0.5 {
		t.Fatalf("P95 = %v, want > 0.5", iv.P95Latency)
	}
	// Without the tail bound the same interval is compliant.
	tr2 := NewTracker(SLA{MaxAvgLatency: 1.0})
	for i := 0; i < 100; i++ {
		tr2.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		tr2.Observe(2.0)
	}
	if iv := tr2.CloseInterval(0, 10); !iv.Met {
		t.Fatal("average-only SLA should pass")
	}
}
