// Package sla defines service level agreements and per-interval
// compliance tracking. Following the paper (§3), the SLA of an
// application is an upper bound on its average query latency; an interval
// in which the bound is met is a *stable* interval, and stable intervals
// are when per-query-class metric signatures are recorded.
//
// Concurrency: trackers are owned by their scheduler on the simulation
// goroutine (internal/cluster); nothing here is concurrent-safe or
// needs to be.
package sla

import (
	"fmt"

	"outlierlb/internal/metrics"
)

// SLA is an application's service level agreement.
type SLA struct {
	// MaxAvgLatency is the bound on average query latency in seconds.
	// The paper uses 1 second for all applications.
	MaxAvgLatency float64
	// MaxP95Latency, when positive, additionally bounds the interval's
	// 95th-percentile latency — an extension over the paper's
	// average-only agreement for tail-sensitive applications.
	MaxP95Latency float64
}

// Default returns the paper's SLA: average query latency ≤ 1 second.
func Default() SLA { return SLA{MaxAvgLatency: 1.0} }

// Met reports whether an observed average latency satisfies the SLA. An
// interval with no queries is vacuously compliant.
func (s SLA) Met(avgLatency float64, queries int64) bool {
	if queries == 0 {
		return true
	}
	return avgLatency <= s.MaxAvgLatency
}

func (s SLA) String() string {
	return fmt.Sprintf("avg latency ≤ %.2fs", s.MaxAvgLatency)
}

// Interval is one measurement interval's application-level outcome.
type Interval struct {
	Start, End float64 // virtual time bounds
	AvgLatency float64
	P50Latency float64 // estimated median latency (0 with no samples)
	P95Latency float64 // estimated 95th percentile (0 with no samples)
	P99Latency float64 // estimated 99th percentile (0 with no samples)
	Throughput float64 // completed interactions per second
	Queries    int64
	Met        bool
}

// Tracker accumulates application-level latency samples and classifies
// measurement intervals as stable or violating.
type Tracker struct {
	sla        SLA
	latencySum float64
	queries    int64
	hist       *metrics.Histogram
	intervals  []Interval
}

// NewTracker returns a tracker for the given SLA.
func NewTracker(s SLA) *Tracker {
	return &Tracker{sla: s, hist: metrics.NewHistogram()}
}

// SLA returns the tracked agreement.
func (t *Tracker) SLA() SLA { return t.sla }

// Observe records one completed query's latency.
func (t *Tracker) Observe(latency float64) {
	t.latencySum += latency
	t.queries++
	t.hist.Observe(latency)
}

// CloseInterval finalizes the current measurement interval spanning
// [start, end] and returns its outcome, resetting the accumulators.
func (t *Tracker) CloseInterval(start, end float64) Interval {
	iv := Interval{Start: start, End: end, Queries: t.queries}
	if t.queries > 0 {
		iv.AvgLatency = t.latencySum / float64(t.queries)
		qs := t.hist.Percentiles(0.50, 0.95, 0.99)
		iv.P50Latency = qs[0]
		iv.P95Latency = qs[1]
		iv.P99Latency = qs[2]
	}
	if d := end - start; d > 0 {
		iv.Throughput = float64(t.queries) / d
	}
	iv.Met = t.sla.Met(iv.AvgLatency, t.queries)
	if iv.Met && t.sla.MaxP95Latency > 0 && t.queries > 0 {
		iv.Met = iv.P95Latency <= t.sla.MaxP95Latency
	}
	t.latencySum, t.queries = 0, 0
	t.hist.Reset()
	t.intervals = append(t.intervals, iv)
	return iv
}

// History returns all closed intervals in order.
func (t *Tracker) History() []Interval { return t.intervals }

// LastStable returns the most recent compliant interval with activity and
// whether one exists.
func (t *Tracker) LastStable() (Interval, bool) {
	for i := len(t.intervals) - 1; i >= 0; i-- {
		if iv := t.intervals[i]; iv.Met && iv.Queries > 0 {
			return iv, true
		}
	}
	return Interval{}, false
}
