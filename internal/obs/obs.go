// Package obs is the observability layer: a typed decision-trace event
// log, a Prometheus-style metric registry, and an HTTP debug server. The
// paper's central claim is that fine-grained load balancing is
// *explainable* — §5.5 walks an administrator from per-class counters to
// an interference diagnosis — so every controller decision (SLA
// violation, outlier context, MRC diagnosis, quota change, migration,
// fallback) is emitted as a structured event an operator can replay.
//
// The simulation and controller code talk to the layer through the
// Observer interface. The default implementation, Nop, discards
// everything, so instrumented hot paths pay only an interface call when
// observability is disabled; Recorder is the real implementation backing
// the /metrics and /debug endpoints.
//
// Concurrency: this is the one layer deliberately built for concurrent
// use. Recorder, Registry and EventLog are all safe to read while the
// simulation goroutine writes, because the HTTP debug server serves
// them live mid-run; everything else in the repository that crosses
// goroutines (internal/metrics.ShardedCollector, internal/mrc.Worker)
// reports its health — e.g. MRC batch-drop counters — through here.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"outlierlb/internal/metrics"
)

// EventKind labels one decision-trace event. The retuning-action kinds
// mirror core.ActionKind string-for-string so an Action converts to an
// Event without a mapping table.
type EventKind string

// Controller retuning actions (mirroring core.ActionKind).
const (
	EventProvision  EventKind = "provision-replica"
	EventQuota      EventKind = "enforce-quota"
	EventReschedule EventKind = "reschedule-class"
	EventIOMove     EventKind = "io-move-class"
	EventFallback   EventKind = "coarse-isolate"
	EventShrink     EventKind = "release-replica"
	EventLockReport EventKind = "lock-contention"
	EventMaintain   EventKind = "maintain-quota"
	EventExhausted  EventKind = "resources-exhausted"
)

// Diagnosis and lifecycle events beyond the action log.
const (
	// EventViolation marks a measurement interval that broke its SLA.
	EventViolation EventKind = "sla-violation"
	// EventOutlier marks a query context flagged by IQR outlier
	// detection; Fields carries the impact value per flagged metric.
	EventOutlier EventKind = "outlier-context"
	// EventMRCDiagnosis marks a class confirmed as a memory problem by
	// MRC recomputation; Fields carries the fresh curve parameters.
	EventMRCDiagnosis EventKind = "mrc-diagnosis"
	// EventSignature marks a stable interval whose metrics refreshed the
	// application's stable-state signature.
	EventSignature EventKind = "signature-recorded"
	// EventEngineUp / EventEngineDown / EventAttach are the resource
	// manager's infrastructure events.
	EventEngineUp   EventKind = "engine-provisioned"
	EventEngineDown EventKind = "engine-decommissioned"
	EventAttach     EventKind = "replica-attached"
)

// Replica health, fault-injection, and degraded-analysis events. The
// scheduler's failure detector and circuit breaker narrate every
// transition of the per-replica health state machine (healthy →
// suspected → failed → probation → healthy) so /debug/decisions explains
// every recovery, not just every retuning action.
const (
	// EventReplicaSuspected marks a replica's first query timeout since
	// it was last healthy.
	EventReplicaSuspected EventKind = "replica-suspected"
	// EventReplicaFailed marks an announced (administrative) replica
	// crash — the scheduler was told, not the detector.
	EventReplicaFailed EventKind = "replica-failed"
	// EventBreakerTrip marks the circuit breaker opening on a replica:
	// it receives no traffic until a half-open probe is due.
	EventBreakerTrip EventKind = "breaker-trip"
	// EventBreakerProbe marks a half-open probe: the replica moves to
	// probation and the next queries decide its fate.
	EventBreakerProbe EventKind = "breaker-probe"
	// EventReplicaRecovered marks a replica returning to healthy, via a
	// successful probe or an administrative recovery.
	EventReplicaRecovered EventKind = "replica-recovered"
	// EventQueryRetry marks one read retried on another replica after a
	// timeout or error.
	EventQueryRetry EventKind = "query-retry"
	// EventFaultInjected / EventFaultCleared bracket each injected fault
	// (crash, gray failure, flap phase, metric blackout).
	EventFaultInjected EventKind = "fault-injected"
	EventFaultCleared  EventKind = "fault-cleared"
	// EventDegradedAnalysis marks the controller skipping or downgrading
	// its diagnosis because a server's metrics are missing or stale.
	EventDegradedAnalysis EventKind = "degraded-analysis"
)

// Overload-protection events (mirroring core's shed/readmit action
// kinds string-for-string, like the retuning actions above).
const (
	// EventShedClass marks the brownout controller putting a query
	// class on the shed list: the cluster is saturated, no rebalancing
	// move exists, and this class ranked lowest by metric impact.
	EventShedClass EventKind = "shed-class"
	// EventReadmitClass marks a shed class re-admitted after the
	// hysteresis streak of stable intervals.
	EventReadmitClass EventKind = "readmit-class"
)

// Control-plane guardrail events. The action watchdog (internal/guard)
// narrates its lifecycle through these so a reverted retuning decision
// is as explainable as the decision itself.
const (
	// EventActionSuspect marks a controller action whose post-action
	// fitness regressed beyond the watchdog's tolerance; Fields carries
	// the pre/post fitness components and the regression score.
	EventActionSuspect EventKind = "action-suspect"
	// EventActionReverted marks a suspect action rolled back by the
	// watchdog (placement restored, quota reinstated, class readmitted).
	EventActionReverted EventKind = "action-reverted"
	// EventGuardVeto marks an action blocked before it ran: rate limit,
	// post-revert cooldown, or the oscillation detector.
	EventGuardVeto EventKind = "guard-veto"
	// EventGuardTripped marks the action-storm circuit opening: the
	// watchdog reverted repeatedly within its window, so diagnosis is
	// suspended and the controller falls back to coarse isolation.
	EventGuardTripped EventKind = "guard-tripped"
)

// Control-channel events (the message-passing control plane,
// internal/ctrlnet + core.ControlPlane): failure-detector transitions,
// lease autonomy, epoch fencing and action-delivery outcomes. Per-
// message traffic is deliberately NOT narrated here — it flows through
// the CtrlSampled counters — so a lossy run's decision trace stays
// readable.
const (
	// EventCtrlSuspect marks the controller's failure detector moving a
	// server from reachable to suspect (missed heartbeat acks).
	EventCtrlSuspect EventKind = "ctrl-suspect"
	// EventCtrlUnreachable marks a server declared unreachable:
	// diagnosis for it is suspended and its pending actions abandoned.
	EventCtrlUnreachable EventKind = "ctrl-unreachable"
	// EventCtrlReachable marks a suspect/unreachable server acking a
	// heartbeat again.
	EventCtrlReachable EventKind = "ctrl-reachable"
	// EventCtrlAutonomy marks an engine-side agent's lease expiring:
	// the engine holds its last-leased configuration (admission gates,
	// brownout state — never widened) and rejects actions until a fresh
	// heartbeat re-establishes the lease.
	EventCtrlAutonomy EventKind = "ctrl-autonomy"
	// EventCtrlLeaseRenewed marks an autonomous agent receiving a
	// heartbeat again and leaving autonomy.
	EventCtrlLeaseRenewed EventKind = "ctrl-lease-renewed"
	// EventCtrlEpoch marks the controller advancing its epoch after
	// deposing a server's view (an unreachable declaration): in-flight
	// actions from earlier epochs are fenced off at the engines.
	EventCtrlEpoch EventKind = "ctrl-epoch-advanced"
	// EventCtrlRetry marks one action RPC retransmission after an ack
	// timeout (capped exponential backoff).
	EventCtrlRetry EventKind = "ctrl-action-retry"
	// EventCtrlStaleEpoch marks an engine rejecting an action stamped
	// with a deposed epoch — the fencing working as intended.
	EventCtrlStaleEpoch EventKind = "ctrl-stale-epoch-rejected"
	// EventCtrlDupAction marks an engine suppressing a duplicate
	// delivery of an already-applied action (idempotent re-ack).
	EventCtrlDupAction EventKind = "ctrl-duplicate-suppressed"
	// EventCtrlAbandoned marks the controller giving up on an action
	// whose retries exhausted (or whose target went unreachable).
	EventCtrlAbandoned EventKind = "ctrl-action-abandoned"
)

// Event is one structured decision-trace record.
type Event struct {
	// Seq is assigned by the event log: a monotonically increasing
	// sequence number across the run.
	Seq uint64 `json:"seq"`
	// Time is the virtual time of the decision, in seconds.
	Time float64   `json:"time"`
	Kind EventKind `json:"kind"`
	// App, Server and Class locate the decision; empty when not
	// applicable.
	App    string `json:"app,omitempty"`
	Server string `json:"server,omitempty"`
	Class  string `json:"class,omitempty"`
	// Level is the outlier strength ("mild"/"extreme") for outlier
	// events.
	Level string `json:"level,omitempty"`
	// Cause is the human-readable explanation, matching the controller's
	// action detail strings.
	Cause string `json:"cause,omitempty"`
	// Fields carries numeric evidence: metric impact values for outlier
	// events, MRC parameters for diagnosis events.
	Fields map[string]float64 `json:"fields,omitempty"`
	// Trace correlates the event with a sampled query's span tree: the
	// TraceID of the query that triggered it (retries, breaker trips,
	// failure-detector transitions). Zero when the triggering query was
	// not sampled or the event is not query-scoped.
	Trace TraceID `json:"trace,omitempty"`
}

// String renders the event as one operator-readable line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%.0fs %s", e.Time, e.Kind)
	if e.App != "" {
		fmt.Fprintf(&b, " app=%s", e.App)
	}
	if e.Server != "" {
		fmt.Fprintf(&b, " server=%s", e.Server)
	}
	if e.Class != "" {
		fmt.Fprintf(&b, " class=%s", e.Class)
	}
	if e.Level != "" {
		fmt.Fprintf(&b, " level=%s", e.Level)
	}
	if len(e.Fields) > 0 {
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.3g", k, e.Fields[k])
		}
	}
	if e.Cause != "" {
		fmt.Fprintf(&b, " — %s", e.Cause)
	}
	return b.String()
}

// IntervalObs is one application's closed measurement interval, as seen
// by an observer.
type IntervalObs struct {
	Time       float64 `json:"time"`
	App        string  `json:"app"`
	AvgLatency float64 `json:"avg_latency"`
	P95Latency float64 `json:"p95_latency"`
	P99Latency float64 `json:"p99_latency"`
	Throughput float64 `json:"throughput"`
	Queries    int64   `json:"queries"`
	Met        bool    `json:"met"`
	Replicas   int     `json:"replicas"`
}

// EngineObs is one database engine's buffer-pool state at a tick, plus
// the backpressure accounting of its background MRC worker (all zeros
// when the engine runs the synchronous statistics pipeline).
type EngineObs struct {
	Engine    string  `json:"engine"`
	HitRatio  float64 `json:"hit_ratio"`
	Resident  int     `json:"resident_pages"`
	Capacity  int     `json:"capacity_pages"`
	QuotaKeys int     `json:"quotas"`
	// MRCFed and MRCDropped count page-access batches accepted by and
	// shed from the engine's background MRC worker since startup.
	// MRCDropped > 0 means the worker's queue is undersized for the load
	// and its curves are sampled rather than exact.
	MRCFed     int64 `json:"mrc_fed_batches,omitempty"`
	MRCDropped int64 `json:"mrc_dropped_batches,omitempty"`
}

// ServerObs is one physical server's utilization sample at a tick.
type ServerObs struct {
	Time    float64     `json:"time"`
	Server  string      `json:"server"`
	CPU     float64     `json:"cpu_utilization"`
	Disk    float64     `json:"disk_utilization"`
	Engines []EngineObs `json:"engines,omitempty"`
}

// ClassLatencyObs is one query class's latency distribution over the
// interval that just closed on one server.
type ClassLatencyObs struct {
	Server string
	App    string
	Class  string
	Count  int64
	Mean   float64
	P50    float64
	P95    float64
	P99    float64
	Max    float64
	// Hist, when non-nil, is a private copy of the interval's latency
	// histogram the receiver may retain and merge.
	Hist *metrics.Histogram
}

// AdmissionQueueObs is one replica queue's depth in an admission
// sample.
type AdmissionQueueObs struct {
	Server string `json:"server"`
	Depth  int    `json:"depth"`
}

// AdmissionClassObs is one query class's cumulative admission ledger.
type AdmissionClassObs struct {
	Class            string `json:"class"`
	Admitted         int64  `json:"admitted"`
	Shed             int64  `json:"shed,omitempty"`
	Throttled        int64  `json:"throttled,omitempty"`
	QueueRejected    int64  `json:"queue_rejected,omitempty"`
	DeadlineRejected int64  `json:"deadline_rejected,omitempty"`
}

// AdmissionObs is one application's overload-protection sample at a
// controller tick: token-bucket level, currently shed classes (in shed
// order), per-replica queue depths, and the per-class ledger.
type AdmissionObs struct {
	Time float64 `json:"time"`
	App  string  `json:"app"`
	// Tokens is the token-bucket level; -1 when the token gate is
	// disabled.
	Tokens      float64             `json:"tokens"`
	ShedClasses []string            `json:"shed_classes,omitempty"`
	Queues      []AdmissionQueueObs `json:"queues,omitempty"`
	Classes     []AdmissionClassObs `json:"classes,omitempty"`
}

// CtrlServerObs is one server's control-channel health as the
// controller's failure detector sees it at a tick.
type CtrlServerObs struct {
	Server string `json:"server"`
	// State is the failure-detector verdict: "reachable", "suspect" or
	// "unreachable".
	State string `json:"state"`
	// MissedAcks counts consecutive unacknowledged heartbeats.
	MissedAcks int `json:"missed_acks,omitempty"`
	// Autonomous reports that the server's agent is known (from its last
	// report) to be running on its local lease, rejecting actions.
	Autonomous bool `json:"autonomous,omitempty"`
}

// CtrlObs is the control plane's per-tick sample: cumulative transport
// and protocol counters plus the failure detector's view of each server.
// Counters are lifetime totals (the recorder Sets them, matching the
// Prometheus counter convention for replayed samples).
type CtrlObs struct {
	Time float64 `json:"time"`
	// Epoch is the controller's current fencing epoch.
	Epoch uint64 `json:"epoch"`
	// Transport counters (internal/ctrlnet lifetime stats).
	Sent       uint64 `json:"sent"`
	Delivered  uint64 `json:"delivered"`
	Dropped    uint64 `json:"dropped,omitempty"`
	Duplicated uint64 `json:"duplicated,omitempty"`
	// Protocol counters.
	ActionRetries   uint64 `json:"action_retries,omitempty"`
	EpochRejections uint64 `json:"epoch_rejections,omitempty"`
	DupSuppressed   uint64 `json:"dup_suppressed,omitempty"`
	// Servers is the failure detector's per-server state.
	Servers []CtrlServerObs `json:"servers,omitempty"`
}

// Observer receives the decision trace and periodic samples. All methods
// are called from the (single-threaded) simulation loop; implementations
// that expose data to other goroutines must synchronize internally.
type Observer interface {
	// Event delivers one decision-trace event.
	Event(e Event)
	// IntervalClosed delivers an application's measurement-interval
	// outcome.
	IntervalClosed(iv IntervalObs)
	// ServerSampled delivers a server utilization sample.
	ServerSampled(s ServerObs)
	// ClassLatency delivers one class's per-interval latency summary.
	ClassLatency(cl ClassLatencyObs)
	// AdmissionSampled delivers an application's overload-protection
	// sample.
	AdmissionSampled(a AdmissionObs)
	// CtrlSampled delivers the control plane's transport/failure-detector
	// sample. Only emitted when the message-passing control plane is
	// active.
	CtrlSampled(c CtrlObs)
}

// Nop is the no-op Observer: every method returns immediately. It is the
// default everywhere an observer can be attached, keeping the simulation
// hot path free of observability cost when tracing is off.
type Nop struct{}

// Event implements Observer.
func (Nop) Event(Event) {}

// IntervalClosed implements Observer.
func (Nop) IntervalClosed(IntervalObs) {}

// ServerSampled implements Observer.
func (Nop) ServerSampled(ServerObs) {}

// ClassLatency implements Observer.
func (Nop) ClassLatency(ClassLatencyObs) {}

// AdmissionSampled implements Observer.
func (Nop) AdmissionSampled(AdmissionObs) {}

// CtrlSampled implements Observer.
func (Nop) CtrlSampled(CtrlObs) {}

var _ Observer = Nop{}

// tee forwards every call to a fixed set of observers, in order.
type tee struct{ outs []Observer }

func (t tee) Event(e Event) {
	for _, o := range t.outs {
		o.Event(e)
	}
}
func (t tee) IntervalClosed(iv IntervalObs) {
	for _, o := range t.outs {
		o.IntervalClosed(iv)
	}
}
func (t tee) ServerSampled(s ServerObs) {
	for _, o := range t.outs {
		o.ServerSampled(s)
	}
}
func (t tee) ClassLatency(cl ClassLatencyObs) {
	for _, o := range t.outs {
		o.ClassLatency(cl)
	}
}
func (t tee) AdmissionSampled(a AdmissionObs) {
	for _, o := range t.outs {
		o.AdmissionSampled(a)
	}
}
func (t tee) CtrlSampled(c CtrlObs) {
	for _, o := range t.outs {
		o.CtrlSampled(c)
	}
}

// Tee returns an Observer that forwards every call to each non-nil
// observer in order — e.g. a scenario's private recorder plus a tool's
// live metrics endpoint. Zero usable observers degrade to Nop.
func Tee(observers ...Observer) Observer {
	var outs []Observer
	for _, o := range observers {
		if o != nil {
			if _, nop := o.(Nop); nop {
				continue
			}
			outs = append(outs, o)
		}
	}
	switch len(outs) {
	case 0:
		return Nop{}
	case 1:
		return outs[0]
	}
	return tee{outs: outs}
}
