package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// TraceID identifies one sampled query's span tree. IDs are derived
// deterministically from the tracer seed and the query ordinal, so the
// same seed samples the same queries with the same IDs on every run.
// Zero is reserved for "not traced".
type TraceID uint64

// SpanID identifies one span within its trace. The root span is always
// 1; children number upward in creation order, so IDs double as a
// creation sequence. Zero is reserved for "no parent" on the root.
type SpanID uint64

// SpanKind is the typed role of a span in the query path.
type SpanKind string

// Span kinds, in query-path order. A query root owns attempt spans (one
// per replica tried), which own exec spans (engine service), which own
// cpu/disk/lock-wait phases. Retry backoff between attempts appears as a
// retry-wait span directly under the root, a sibling of the attempts it
// separates.
const (
	// SpanQuery is the root: one whole Submit, admission to completion.
	SpanQuery SpanKind = "query"
	// SpanAttempt is one try against one replica (reads may retry; the
	// replica's server name is on the span, failures set Err).
	SpanAttempt SpanKind = "attempt"
	// SpanRetryWait is the backoff pause between failed attempts.
	SpanRetryWait SpanKind = "retry-wait"
	// SpanExec is the engine service time: lock wait through last I/O.
	SpanExec SpanKind = "exec"
	// SpanCPU is the CPU service phase inside an exec span.
	SpanCPU SpanKind = "cpu"
	// SpanDisk is the disk service phase inside an exec span.
	SpanDisk SpanKind = "disk"
	// SpanLockWait is time spent queued behind the engine's lock slots.
	SpanLockWait SpanKind = "lock-wait"
	// SpanGuard is a control-plane marker: a zero-or-short-duration root
	// span recording a watchdog rollback so trace timelines show where a
	// controller action was reverted. Created by Tracer.StartMarker, never
	// by StartQuery.
	SpanGuard SpanKind = "guard"
	// SpanCtrlAction is a control-plane marker root span covering one
	// remote action delivery over the message-passing control channel:
	// its events are the message hops (send, retry, ack, rejection).
	// Only created for non-inline deliveries — a perfect channel adds no
	// spans, keeping perfect-channel traces identical to direct-call
	// traces. Created by Tracer.StartMarker.
	SpanCtrlAction SpanKind = "ctrl-action"
)

// SpanEvent is a point-in-time annotation on a span — admission
// verdicts, slot acquire/commit/cancel, breaker and failure-detector
// transitions. Kind reuses the decision-trace EventKind vocabulary plus
// the span-only kinds below, so events correlate 1:1 with
// /debug/decisions entries carrying the same TraceID.
type SpanEvent struct {
	Time   float64            `json:"time"`
	Kind   EventKind          `json:"kind"`
	Detail string             `json:"detail,omitempty"`
	Fields map[string]float64 `json:"fields,omitempty"`
}

// Span-only event kinds: per-query admission mechanics too fine-grained
// for the decision trace but essential for per-request causality.
const (
	// EventAdmitted marks the admission gate letting the query through.
	EventAdmitted EventKind = "admission-admitted"
	// EventAdmissionRejected marks the gate turning the query away;
	// Detail carries the rejection reason (shed/throttle).
	EventAdmissionRejected EventKind = "admission-rejected"
	// EventSlotAcquire marks a bounded-queue slot granted on a replica.
	EventSlotAcquire EventKind = "slot-acquire"
	// EventSlotReject marks a slot refused (queue full or deadline).
	EventSlotReject EventKind = "slot-reject"
	// EventSlotCommit marks the winning replica's slot being kept.
	EventSlotCommit EventKind = "slot-commit"
	// EventSlotCancel marks a losing candidate's slot released.
	EventSlotCancel EventKind = "slot-cancel"
	// EventCtrlSend marks one request message handed to the control
	// channel on a SpanCtrlAction span (initial send or retransmission;
	// Fields carry the attempt number).
	EventCtrlSend EventKind = "ctrl-send"
	// EventCtrlAck marks the engine's acknowledgement arriving back at
	// the controller; Detail carries the engine's verdict (applied,
	// stale-epoch, no-lease, duplicate).
	EventCtrlAck EventKind = "ctrl-ack"
)

// Span is one timed node in a query's trace tree. Spans are built
// single-threaded on the simulation loop and published to concurrent
// readers only when the root finishes, so fields need no locking; a nil
// *Span is the universal "not sampled" value and every method is a
// no-op on it.
type Span struct {
	Trace  TraceID  `json:"trace"`
	ID     SpanID   `json:"id"`
	Parent SpanID   `json:"parent,omitempty"`
	Kind   SpanKind `json:"kind"`
	// Name is a short human label ("attempt srv0", "exec").
	Name string `json:"name,omitempty"`
	// App, Server and Class locate the span; empty when not applicable.
	App    string `json:"app,omitempty"`
	Server string `json:"server,omitempty"`
	Class  string `json:"class,omitempty"`
	// Start and End are virtual-time seconds. End < Start never occurs;
	// an unfinished span has End == 0 only while the trace is still
	// being built.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Err is the failure that ended the span, "" on success.
	Err string `json:"err,omitempty"`
	// Attrs carries numeric facts (pool hits/misses, queue estimates).
	Attrs map[string]float64 `json:"attrs,omitempty"`
	// Events are point-in-time annotations, in emission order.
	Events []SpanEvent `json:"events,omitempty"`
	// Children are nested spans in creation order.
	Children []*Span `json:"children,omitempty"`

	tracer *Tracer
	parent *Span
}

// Child opens a nested span starting at now. Nil-safe: a nil receiver
// returns nil, so untraced paths chain without guards (though hot paths
// should guard explicitly to skip argument evaluation).
func (s *Span) Child(now float64, kind SpanKind, name string) *Span {
	if s == nil {
		return nil
	}
	s.tracer.spanSeq++
	c := &Span{
		Trace: s.Trace, ID: s.tracer.spanSeq, Parent: s.ID,
		Kind: kind, Name: name, Start: now,
		tracer: s.tracer, parent: s,
	}
	s.Children = append(s.Children, c)
	return c
}

// Annotate records one numeric attribute. Nil-safe.
func (s *Span) Annotate(key string, v float64) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]float64, 4)
	}
	s.Attrs[key] = v
}

// AddEvent appends a point-in-time annotation. Nil-safe.
func (s *Span) AddEvent(now float64, kind EventKind, detail string, fields map[string]float64) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, SpanEvent{Time: now, Kind: kind, Detail: detail, Fields: fields})
}

// Fail marks the span's outcome. Nil-safe.
func (s *Span) Fail(err string) {
	if s == nil {
		return
	}
	s.Err = err
}

// Finish closes the span at now (clamped to Start). Finishing the root
// publishes the whole tree to the tracer's ring, making it visible to
// concurrent readers; the tree must not be mutated afterwards. Nil-safe.
func (s *Span) Finish(now float64) {
	if s == nil {
		return
	}
	if now < s.Start {
		now = s.Start
	}
	s.End = now
	if s.parent == nil && s.tracer != nil {
		s.tracer.finishRoot(s)
	}
}

// TraceID returns the span's trace ID, 0 for nil — the nil-safe form
// event emitters use to stamp correlation IDs. Nil-safe.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.Trace
}

// Root returns the span's trace root. Nil-safe.
func (s *Span) Root() *Span {
	if s == nil {
		return nil
	}
	for s.parent != nil {
		s = s.parent
	}
	return s
}

// TraceStats counts the tracer's lifetime activity.
type TraceStats struct {
	// Started counts every query seen while sampling was enabled
	// (rate > 0), sampled or not; a disabled tracer counts nothing.
	Started uint64 `json:"started"`
	// Sampled counts queries that got a span tree.
	Sampled uint64 `json:"sampled"`
	// Finished counts roots published to the ring.
	Finished uint64 `json:"finished"`
	// Evicted counts finished traces pushed out of the ring.
	Evicted uint64 `json:"evicted"`
}

// Tracer owns head sampling and the ring of finished traces. The write
// side (StartQuery, Span building) runs on the single-threaded
// simulation loop; only the publish step and the read accessors
// (Get/Recent/Stats) synchronize, so the debug server can read finished
// traces mid-run.
//
// Sampling is deterministic: the decision for the n-th query hashes the
// tracer seed and n through the splitmix64 finalizer, independent of
// the simulation's RNG stream — attaching a tracer never perturbs event
// order, which is what keeps figure goldens bit-identical.
type Tracer struct {
	seed uint64
	rate float64

	// Written only on the simulation loop but read by Stats() from
	// concurrent HTTP handlers mid-run, so the counters are atomic; the
	// disabled hot path stays one atomic add plus a branch.
	count   atomic.Uint64 // queries seen, sampled or not
	sampled atomic.Uint64

	// Single-threaded (simulation loop) state.
	spanSeq   SpanID // span counter for the trace being built
	cur       *Span  // innermost span new engine work should nest under
	markerSeq uint64 // guard-marker counter, independent of query sampling

	mu       sync.Mutex
	ring     []*Span
	head     int
	cap      int
	finished uint64
	evicted  uint64
	byID     map[TraceID]*Span
}

// DefaultTraceRing is the finished-trace ring capacity tools use.
const DefaultTraceRing = 512

// NewTracer returns a tracer sampling the given fraction of queries
// (rate ≤ 0 disables, ≥ 1 samples everything) and retaining the last
// ringCap finished traces (0 means DefaultTraceRing).
func NewTracer(seed uint64, rate float64, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultTraceRing
	}
	return &Tracer{seed: seed, rate: rate, cap: ringCap, byID: make(map[TraceID]*Span)}
}

// mix64 is the splitmix64 finalizer — an invertible hash, so distinct
// inputs give distinct trace IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StartQuery makes the head-sampling decision for the next query and,
// when sampled, opens its root span (which also becomes the current
// span). Returns nil when the query is not sampled or the tracer is
// nil — the disabled path (nil tracer or rate ≤ 0) does no work at
// all, just two branches; counters are only maintained while sampling
// is enabled, where their atomic cost is noise next to span building.
func (t *Tracer) StartQuery(now float64, app, class string) *Span {
	if t == nil || t.rate <= 0 {
		return nil
	}
	n := t.count.Add(1)
	h := mix64(t.seed + n*0x9e3779b97f4a7c15)
	if t.rate < 1 && float64(h>>11)/(1<<53) >= t.rate {
		return nil
	}
	if h == 0 {
		h = 1
	}
	t.sampled.Add(1)
	t.spanSeq = 1
	root := &Span{
		Trace: TraceID(h), ID: 1, Kind: SpanQuery,
		App: app, Class: class, Start: now, tracer: t,
	}
	t.cur = root
	return root
}

// StartMarker opens a control-plane guard marker: a standalone root
// span (kind SpanGuard) that lands in the finished-trace ring so
// tracetool timelines show reverted actions next to query traces. The
// caller annotates it and Finishes it immediately.
//
// Markers draw IDs from their own counter and never touch the query
// head-sampling counter or the in-flight trace's span sequence, so
// attaching guard markers perturbs neither sampling decisions nor open
// query traces — figure goldens stay bit-identical. Returns nil when
// the tracer is nil or disabled.
func (t *Tracer) StartMarker(now float64, app, name string) *Span {
	if t == nil || t.rate <= 0 {
		return nil
	}
	t.markerSeq++
	h := mix64((t.seed ^ 0xa5a5a5a5a5a5a5a5) + t.markerSeq*0x9e3779b97f4a7c15)
	if h == 0 {
		h = 1
	}
	return &Span{
		Trace: TraceID(h), ID: 1, Kind: SpanGuard,
		Name: name, App: app, Start: now, tracer: t,
	}
}

// Current returns the span new nested work should attach to, nil when
// the active query is unsampled. Nil-safe.
func (t *Tracer) Current() *Span {
	if t == nil {
		return nil
	}
	return t.cur
}

// SetCurrent rebinds the attachment point — the scheduler points it at
// the active attempt span before calling into the engine. Nil-safe.
func (t *Tracer) SetCurrent(sp *Span) {
	if t != nil {
		t.cur = sp
	}
}

// Rate reports the configured sampling rate.
func (t *Tracer) Rate() float64 {
	if t == nil {
		return 0
	}
	return t.rate
}

// finishRoot publishes a finished trace to the ring.
func (t *Tracer) finishRoot(root *Span) {
	if t.cur != nil && t.cur.Root() == root {
		t.cur = nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, root)
	} else {
		old := t.ring[t.head]
		delete(t.byID, old.Trace)
		t.ring[t.head] = root
		t.head = (t.head + 1) % t.cap
		t.evicted++
	}
	t.byID[root.Trace] = root
}

// Get returns the finished trace with the given ID, nil when unknown
// (never sampled, unfinished, or evicted). Nil-safe.
func (t *Tracer) Get(id TraceID) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// Recent returns up to n finished traces, oldest first (n ≤ 0 means
// all retained). Nil-safe.
func (t *Tracer) Recent(n int) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		out = append(out, t.ring[(t.head+i)%len(t.ring)])
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Stats reports lifetime tracer counters. Nil-safe.
func (t *Tracer) Stats() TraceStats {
	if t == nil {
		return TraceStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceStats{Started: t.count.Load(), Sampled: t.sampled.Load(), Finished: t.finished, Evicted: t.evicted}
}

// Validate checks a finished trace for well-formedness: the root has
// no parent, every span carries the root's TraceID, every child's
// Parent field resolves to its actual parent's ID, span IDs are unique,
// and every span is finished (End ≥ Start).
func Validate(root *Span) error {
	if root == nil {
		return fmt.Errorf("trace: nil root")
	}
	if root.Parent != 0 {
		return fmt.Errorf("trace %d: root span %d has parent %d", root.Trace, root.ID, root.Parent)
	}
	seen := make(map[SpanID]bool)
	var walk func(s *Span) error
	walk = func(s *Span) error {
		if s.Trace != root.Trace {
			return fmt.Errorf("trace %d: span %d carries foreign trace id %d", root.Trace, s.ID, s.Trace)
		}
		if seen[s.ID] {
			return fmt.Errorf("trace %d: duplicate span id %d", root.Trace, s.ID)
		}
		seen[s.ID] = true
		if s.End < s.Start {
			return fmt.Errorf("trace %d: span %d ends before it starts (%g < %g)", root.Trace, s.ID, s.End, s.Start)
		}
		for _, c := range s.Children {
			if c.Parent != s.ID {
				return fmt.Errorf("trace %d: span %d claims parent %d but is nested under %d — orphan", root.Trace, c.ID, c.Parent, s.ID)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root)
}

// Phases is a query's latency partitioned into where the time went.
// The three fields always sum to exactly End-Start of the root.
type Phases struct {
	// Queue is time not covered below: admission, scheduler queueing,
	// replica freshness waits.
	Queue float64 `json:"queue"`
	// Service is time inside successful engine executions.
	Service float64 `json:"service"`
	// Retry is time burned on failed attempts and backoff waits.
	Retry float64 `json:"retry"`
}

type ival struct{ a, b float64 }

// Breakdown partitions a finished query's wall time into queue,
// service and retry by sweeping the span tree's intervals: service is
// the union of exec spans under non-failed attempts (clipped to the
// root window, priority over retry), retry is the union of failed
// attempts and retry-waits minus service, and queue is the remainder —
// an exact partition by construction.
func Breakdown(root *Span) Phases {
	if root == nil {
		return Phases{}
	}
	var service, retry []ival
	var walk func(s *Span, inFailedAttempt bool)
	walk = func(s *Span, inFailedAttempt bool) {
		switch {
		case s.Kind == SpanExec && !inFailedAttempt:
			service = append(service, ival{s.Start, s.End})
		case s.Kind == SpanAttempt && s.Err != "":
			retry = append(retry, ival{s.Start, s.End})
			inFailedAttempt = true
		case s.Kind == SpanRetryWait:
			retry = append(retry, ival{s.Start, s.End})
		}
		for _, c := range s.Children {
			walk(c, inFailedAttempt)
		}
	}
	walk(root, false)
	total := root.End - root.Start
	service = mergeClipped(service, root.Start, root.End)
	retry = subtract(mergeClipped(retry, root.Start, root.End), service)
	p := Phases{Service: length(service), Retry: length(retry)}
	p.Queue = total - p.Service - p.Retry
	if p.Queue < 0 {
		p.Queue = 0
	}
	return p
}

// mergeClipped clips intervals to [lo, hi], drops empties and merges
// overlaps into a sorted disjoint list.
func mergeClipped(ivs []ival, lo, hi float64) []ival {
	clipped := ivs[:0]
	for _, iv := range ivs {
		if iv.a < lo {
			iv.a = lo
		}
		if iv.b > hi {
			iv.b = hi
		}
		if iv.b > iv.a {
			clipped = append(clipped, iv)
		}
	}
	if len(clipped) == 0 {
		return nil
	}
	sort.Slice(clipped, func(i, j int) bool { return clipped[i].a < clipped[j].a })
	out := clipped[:1]
	for _, iv := range clipped[1:] {
		if iv.a <= out[len(out)-1].b {
			if iv.b > out[len(out)-1].b {
				out[len(out)-1].b = iv.b
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// subtract removes the sorted disjoint list b from the sorted disjoint
// list a.
func subtract(a, b []ival) []ival {
	var out []ival
	for _, iv := range a {
		for _, cut := range b {
			if cut.b <= iv.a || cut.a >= iv.b {
				continue
			}
			if cut.a > iv.a {
				out = append(out, ival{iv.a, cut.a})
			}
			if cut.b < iv.b {
				iv.a = cut.b
			} else {
				iv.a = iv.b
				break
			}
		}
		if iv.b > iv.a {
			out = append(out, iv)
		}
	}
	return out
}

func length(ivs []ival) float64 {
	total := 0.0
	for _, iv := range ivs {
		total += iv.b - iv.a
	}
	return total
}

// CriticalPath returns the chain of spans that determines the root's
// end time: from each span, the child whose End is latest (the root
// itself is element 0). Gaps between consecutive elements are waiting
// time on the critical path.
func CriticalPath(root *Span) []*Span {
	if root == nil {
		return nil
	}
	path := []*Span{root}
	s := root
	for len(s.Children) > 0 {
		best := s.Children[0]
		for _, c := range s.Children[1:] {
			if c.End >= best.End {
				best = c
			}
		}
		path = append(path, best)
		s = best
	}
	return path
}
