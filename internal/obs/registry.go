package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"outlierlb/internal/metrics"
)

// Label is one metric dimension.
type Label struct {
	Name  string
	Value string
}

// Labels is an ordered label set.
type Labels []Label

// L builds a label set from alternating name/value pairs:
// L("app", "tpcw", "class", "BestSeller"). Panics on an odd argument
// count — label sets are static call sites, not data.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs: L requires name/value pairs")
	}
	out := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Name: kv[i], Value: kv[i+1]})
	}
	return out
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// render produces the canonical `{a="b",c="d"}` suffix (labels sorted by
// name), or "" for an empty set.
func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append(Labels(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// series is one (metric, label set) time series.
type series struct {
	labels string
	value  float64
	hist   *metrics.Histogram // non-nil for histograms
}

// family groups the series of one metric name.
type family struct {
	name   string
	typ    string // "counter" | "gauge" | "histogram"
	help   string
	series map[string]*series
}

// Registry holds counters, gauges and latency histograms and renders
// them in the Prometheus text exposition format. Families are created
// lazily with the type implied by the first operation (Add → counter,
// Set → gauge, Observe → histogram); mixing operations on one name
// panics, since that is always an instrumentation bug. Safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Help sets the HELP string rendered for metric name.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	f.help = help
}

func (r *Registry) seriesFor(name, typ string, labels Labels) *series {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ == "" {
		f.typ = typ
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q used as both %s and %s", name, f.typ, typ))
	}
	key := labels.render()
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		if typ == "histogram" {
			s.hist = metrics.NewHistogram()
		}
		f.series[key] = s
	}
	return s
}

// Add increments the counter name{labels} by delta (negative deltas
// panic: counters only go up).
func (r *Registry) Add(name string, labels Labels, delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative counter increment for %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, "counter", labels).value += delta
}

// Set assigns the gauge name{labels}.
func (r *Registry) Set(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, "gauge", labels).value = v
}

// Observe records one sample into the histogram name{labels}.
func (r *Registry) Observe(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, "histogram", labels).hist.Observe(v)
}

// ObserveHistogram merges a whole histogram of samples into the
// histogram name{labels} — the batch form of Observe for per-interval
// histograms.
func (r *Registry) ObserveHistogram(name string, labels Labels, h *metrics.Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, "histogram", labels).hist.Merge(h)
}

// Value returns the current value of a counter or gauge (0 when the
// series does not exist). Tests and reports use it; histograms return 0.
func (r *Registry) Value(name string, labels Labels) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return 0
	}
	s := f.series[labels.render()]
	if s == nil || s.hist != nil {
		return 0
	}
	return s.value
}

// HistogramBuckets is the fixed `le` ladder every histogram family
// exposes: latency-shaped bounds from 1 ms to 60 s (seconds), plus the
// implicit +Inf bucket. A fixed ladder keeps series cardinality bounded
// and lets PromQL's histogram_quantile aggregate across label sets.
var HistogramBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by metric name and
// label set. Histogram families render cumulative `le` buckets (the
// HistogramBuckets ladder plus +Inf) with _sum and _count, so
// histogram_quantile works downstream.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		if f.typ == "" {
			continue // Help declared but never used
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if s.hist == nil {
				if _, err := fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.value); err != nil {
					return err
				}
				continue
			}
			cum := s.hist.CumulativeLE(HistogramBuckets)
			for i, le := range HistogramBuckets {
				if err := writeBucket(w, f.name, s.labels, fmt.Sprintf("%g", le), cum[i]); err != nil {
					return err
				}
			}
			if err := writeBucket(w, f.name, s.labels, "+Inf", s.hist.Count()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, s.labels, s.hist.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.hist.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeBucket emits one cumulative histogram bucket line, splicing the
// le label into the existing label set.
func writeBucket(w io.Writer, name, labels, le string, n int64) error {
	bl := fmt.Sprintf(`le="%s"`, le)
	if labels == "" {
		labels = "{" + bl + "}"
	} else {
		labels = labels[:len(labels)-1] + "," + bl + "}"
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, n)
	return err
}

// SeriesSample is one (metric, label set) value in a registry snapshot.
// Histogram families flatten to their _count and _sum series so a
// snapshot is always plain numbers.
type SeriesSample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"` // rendered {a="b",...} form
	Value  float64 `json:"value"`
}

// Snapshot returns every series' current value, sorted by metric name
// then label set — the flight recorder samples this once per closed
// interval.
func (r *Registry) Snapshot() []SeriesSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SeriesSample
	for _, f := range r.families {
		if f.typ == "" {
			continue
		}
		for _, s := range f.series {
			if s.hist != nil {
				out = append(out, SeriesSample{Name: f.name + "_count", Labels: s.labels, Value: float64(s.hist.Count())})
				out = append(out, SeriesSample{Name: f.name + "_sum", Labels: s.labels, Value: s.hist.Sum()})
				continue
			}
			out = append(out, SeriesSample{Name: f.name, Labels: s.labels, Value: s.value})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}
