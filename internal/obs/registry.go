package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"outlierlb/internal/metrics"
)

// Label is one metric dimension.
type Label struct {
	Name  string
	Value string
}

// Labels is an ordered label set.
type Labels []Label

// L builds a label set from alternating name/value pairs:
// L("app", "tpcw", "class", "BestSeller"). Panics on an odd argument
// count — label sets are static call sites, not data.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs: L requires name/value pairs")
	}
	out := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Name: kv[i], Value: kv[i+1]})
	}
	return out
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// render produces the canonical `{a="b",c="d"}` suffix (labels sorted by
// name), or "" for an empty set.
func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append(Labels(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// series is one (metric, label set) time series.
type series struct {
	labels string
	value  float64
	hist   *metrics.Histogram // non-nil for summaries
}

// family groups the series of one metric name.
type family struct {
	name   string
	typ    string // "counter" | "gauge" | "summary"
	help   string
	series map[string]*series
}

// Registry holds counters, gauges and latency summaries and renders them
// in the Prometheus text exposition format. Families are created lazily
// with the type implied by the first operation (Add → counter, Set →
// gauge, Observe → summary); mixing operations on one name panics, since
// that is always an instrumentation bug. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Help sets the HELP string rendered for metric name.
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	f.help = help
}

func (r *Registry) seriesFor(name, typ string, labels Labels) *series {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ == "" {
		f.typ = typ
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q used as both %s and %s", name, f.typ, typ))
	}
	key := labels.render()
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		if typ == "summary" {
			s.hist = metrics.NewHistogram()
		}
		f.series[key] = s
	}
	return s
}

// Add increments the counter name{labels} by delta (negative deltas
// panic: counters only go up).
func (r *Registry) Add(name string, labels Labels, delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative counter increment for %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, "counter", labels).value += delta
}

// Set assigns the gauge name{labels}.
func (r *Registry) Set(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, "gauge", labels).value = v
}

// Observe records one sample into the summary name{labels}.
func (r *Registry) Observe(name string, labels Labels, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, "summary", labels).hist.Observe(v)
}

// ObserveHistogram merges a whole histogram of samples into the summary
// name{labels} — the batch form of Observe for per-interval histograms.
func (r *Registry) ObserveHistogram(name string, labels Labels, h *metrics.Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesFor(name, "summary", labels).hist.Merge(h)
}

// Value returns the current value of a counter or gauge (0 when the
// series does not exist). Tests and reports use it; summaries return 0.
func (r *Registry) Value(name string, labels Labels) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return 0
	}
	s := f.series[labels.render()]
	if s == nil || s.hist != nil {
		return 0
	}
	return s.value
}

// summaryQuantiles are the quantile series each summary exposes.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by metric name and
// label set.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		if f.typ == "" {
			continue // Help declared but never used
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			if s.hist == nil {
				if _, err := fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.value); err != nil {
					return err
				}
				continue
			}
			for _, q := range summaryQuantiles {
				if err := writeQuantile(w, f.name, s.labels, q, s.hist.Quantile(q)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, s.labels, s.hist.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.hist.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeQuantile emits one summary quantile line, splicing the quantile
// label into the existing label set.
func writeQuantile(w io.Writer, name, labels string, q, v float64) error {
	ql := fmt.Sprintf(`quantile="%g"`, q)
	if labels == "" {
		labels = "{" + ql + "}"
	} else {
		labels = labels[:len(labels)-1] + "," + ql + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %g\n", name, labels, v)
	return err
}
