package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestEndpointsUnderConcurrentEmission hammers every debug endpoint
// while 8 goroutines emit decision-trace events and one goroutine (the
// simulation loop's stand-in: span building is single-threaded by
// design) drives the tracer and flight recorder. Run under -race this
// is the proof that the HTTP read side only touches concurrent-safe
// surfaces.
func TestEndpointsUnderConcurrentEmission(t *testing.T) {
	rec := NewRecorder(256)
	tr := NewTracer(1, 1.0, 32)
	fl := NewFlightRecorder(rec.Registry(), tr, RunMeta{Tool: "race-test", Seed: 1, SampleRate: 1})
	obsv := Tee(rec, fl)
	srv := httptest.NewServer(NewMux(MuxConfig{
		Log:      rec.Events(),
		Registry: rec.Registry(),
		Tracer:   tr,
		Flight:   fl,
		PProf:    true,
	}))
	defer srv.Close()

	const emitters = 8
	const perEmitter = 400
	var wg sync.WaitGroup

	// Start the endpoint hammerers FIRST and wait for each to complete
	// one successful request before any writer goroutine launches — that
	// is what guarantees the HTTP read side genuinely interleaves with
	// StartQuery and event emission instead of racing past it.
	done := make(chan struct{})
	paths := []string{"/metrics", "/debug/decisions", "/debug/trace", "/debug/trace/12345", "/debug/runs"}
	var ready, readers sync.WaitGroup
	for _, p := range paths {
		ready.Add(1)
		readers.Add(1)
		go func(p string) {
			defer readers.Done()
			first := true
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL + p)
				if err != nil {
					if first {
						ready.Done()
					}
					t.Error(err)
					return
				}
				resp.Body.Close()
				if first {
					first = false
					ready.Done()
				}
			}
		}(p)
	}
	ready.Wait()

	// 8 goroutines flooding the decision trace and metrics registry.
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			app := fmt.Sprintf("app%d", g)
			for i := 0; i < perEmitter; i++ {
				obsv.Event(Event{Time: float64(i), Kind: EventViolation, App: app})
				obsv.ClassLatency(ClassLatencyObs{Server: "db1", App: app, Class: "c", Count: 1, Mean: 0.1, P95: 0.2})
			}
		}(g)
	}

	// One goroutine plays the simulation loop: spans are built
	// single-threaded and only published trees are read concurrently.
	var lastID TraceID
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perEmitter; i++ {
			now := float64(i)
			sp := tr.StartQuery(now, "tpcw", "Home")
			asp := sp.Child(now, SpanAttempt, "db1")
			asp.AddEvent(now, EventSlotAcquire, "db1", nil)
			asp.Child(now, SpanExec, "engine-0").Finish(now + 0.1)
			asp.Finish(now + 0.1)
			sp.Finish(now + 0.2)
			lastID = sp.Trace
			if i%50 == 0 {
				fl.IntervalClosed(IntervalObs{Time: now, App: "tpcw"})
			}
		}
	}()

	wg.Wait()
	close(done)
	readers.Wait()

	if got := rec.Events().Total(); got != emitters*perEmitter {
		t.Errorf("event total = %d, want %d", got, emitters*perEmitter)
	}
	st := tr.Stats()
	if st.Finished != perEmitter {
		t.Errorf("finished traces = %d, want %d", st.Finished, perEmitter)
	}
	// The last trace must be fully readable over HTTP once the dust
	// settles.
	resp, err := http.Get(fmt.Sprintf("%s/debug/trace/%d", srv.URL, lastID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final trace fetch = %d", resp.StatusCode)
	}
	var got struct {
		Root   *Span  `json:"root"`
		Phases Phases `json:"phases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if err := Validate(got.Root); err != nil {
		t.Errorf("trace served over HTTP is malformed: %v", err)
	}
	if got.Phases.Service <= 0 {
		t.Errorf("phases = %+v, want positive service time", got.Phases)
	}
}

func TestTraceEndpoints(t *testing.T) {
	tr := NewTracer(1, 1.0, 8)
	fl := NewFlightRecorder(NewRegistry(), tr, RunMeta{Tool: "test"})
	srv := httptest.NewServer(NewMux(MuxConfig{Tracer: tr, Flight: fl}))
	defer srv.Close()

	sp := tr.StartQuery(1, "tpcw", "Home")
	sp.Child(1, SpanAttempt, "db1").Finish(2)
	sp.Finish(2)

	code, body, _ := get(t, srv.URL+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("trace list = %d", code)
	}
	var list struct {
		Stats  TraceStats `json:"stats"`
		Traces []struct {
			Trace TraceID `json:"trace"`
			Spans int     `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list.Stats.Sampled != 1 || len(list.Traces) != 1 || list.Traces[0].Spans != 2 {
		t.Fatalf("trace list = %+v", list)
	}

	code, _, _ = get(t, fmt.Sprintf("%s/debug/trace/%d", srv.URL, list.Traces[0].Trace))
	if code != http.StatusOK {
		t.Errorf("trace by id = %d", code)
	}
	if code, _, _ := get(t, srv.URL+"/debug/trace/999"); code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", code)
	}
	if code, _, _ := get(t, srv.URL+"/debug/trace/bogus"); code != http.StatusBadRequest {
		t.Errorf("malformed trace id = %d, want 400", code)
	}

	code, body, _ = get(t, srv.URL+"/debug/runs")
	if code != http.StatusOK {
		t.Fatalf("runs = %d", code)
	}
	var rec RunRecording
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.SchemaVersion != RunSchemaVersion || len(rec.Traces) != 1 {
		t.Errorf("runs snapshot: version %d, %d traces", rec.SchemaVersion, len(rec.Traces))
	}
}

func TestPProfGating(t *testing.T) {
	off := httptest.NewServer(NewMux(MuxConfig{}))
	defer off.Close()
	if code, _, _ := get(t, off.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", code)
	}
	on := httptest.NewServer(NewMux(MuxConfig{PProf: true}))
	defer on.Close()
	if code, _, _ := get(t, on.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof with opt-in = %d, want 200", code)
	}
}
