package obs

// This file is the run flight recorder: an interval-aligned in-memory
// time series of every registered metric plus the sampled span trees,
// flushed at run end as a versioned RUN_*.json artifact (the
// BENCH_*.json idiom — strict schema, atomic temp+rename write) and
// served live at /debug/runs. cmd/tracetool consumes the artifact.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// RunSchemaVersion is the RUN_*.json document version this package
// reads and writes. Loaders reject any other version rather than guess.
const RunSchemaVersion = 1

// RunSeries is one metric series of a recording: one point per tick,
// zero-backfilled for ticks before the series first appeared.
type RunSeries struct {
	Name string `json:"name"`
	// Labels is the rendered {a="b",...} label set, "" when unlabeled.
	Labels string    `json:"labels,omitempty"`
	Points []float64 `json:"points"`
}

// RunMeta identifies the run a recording captured.
type RunMeta struct {
	Tool       string  `json:"tool,omitempty"`
	Scenario   string  `json:"scenario,omitempty"`
	Seed       uint64  `json:"seed"`
	SampleRate float64 `json:"sample_rate"`
}

// RunRecording is the top-level RUN_*.json document: run identity, one
// tick timestamp per closed controller interval, every registered
// metric's value at each tick (histograms as _count/_sum), the tracer's
// lifetime counters, and the retained span trees.
type RunRecording struct {
	SchemaVersion int `json:"schema_version"`
	RunMeta
	// Ticks are the controller tick times the series are aligned to,
	// in virtual-time seconds, ascending.
	Ticks  []float64   `json:"ticks"`
	Series []RunSeries `json:"series"`
	// TraceStats counts all queries, including unsampled and evicted
	// ones, so Traces' coverage is quantified.
	TraceStats TraceStats `json:"trace_stats"`
	// Traces are the retained finished span trees, oldest first.
	Traces []*Span `json:"traces,omitempty"`
}

// FlightRecorder records a run as it happens. It implements Observer
// and is meant to be Tee'd after a Recorder sharing the same Registry:
// each controller tick's IntervalClosed marks an interval boundary, and
// the registry is sampled once per tick *after* every app's interval
// data landed (the sample for tick T is taken when tick T+1 opens, or
// at Snapshot time for the final tick). Safe for concurrent use — the
// HTTP server snapshots it mid-run.
type FlightRecorder struct {
	reg    *Registry
	tracer *Tracer
	meta   RunMeta

	mu          sync.Mutex
	ticks       []float64
	series      map[string]*RunSeries
	pending     bool
	pendingTime float64
}

// NewFlightRecorder returns a recorder sampling reg each tick and
// harvesting finished traces from tracer (which may be nil for a
// metrics-only recording).
func NewFlightRecorder(reg *Registry, tracer *Tracer, meta RunMeta) *FlightRecorder {
	return &FlightRecorder{reg: reg, tracer: tracer, meta: meta, series: make(map[string]*RunSeries)}
}

// Event implements Observer.
func (f *FlightRecorder) Event(Event) {}

// ServerSampled implements Observer.
func (f *FlightRecorder) ServerSampled(ServerObs) {}

// ClassLatency implements Observer.
func (f *FlightRecorder) ClassLatency(ClassLatencyObs) {}

// AdmissionSampled implements Observer.
func (f *FlightRecorder) AdmissionSampled(AdmissionObs) {}

// CtrlSampled implements Observer.
func (f *FlightRecorder) CtrlSampled(CtrlObs) {}

// IntervalClosed implements Observer: the first interval closing at a
// new tick time seals the previous tick — by then every app's latency,
// admission and server samples for it reached the registry.
func (f *FlightRecorder) IntervalClosed(iv IntervalObs) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pending && iv.Time <= f.pendingTime {
		return // another app closing the same tick
	}
	if f.pending {
		f.sampleLocked(f.pendingTime)
	}
	f.pending, f.pendingTime = true, iv.Time
}

// sampleLocked appends one tick's registry snapshot to every series.
// Registry families only ever grow, so a series present at tick T is
// present at every later tick; series born late are zero-backfilled.
func (f *FlightRecorder) sampleLocked(t float64) {
	f.ticks = append(f.ticks, t)
	for _, s := range f.reg.Snapshot() {
		key := s.Name + s.Labels
		rs := f.series[key]
		if rs == nil {
			rs = &RunSeries{Name: s.Name, Labels: s.Labels, Points: make([]float64, 0, 16)}
			f.series[key] = rs
		}
		for len(rs.Points) < len(f.ticks)-1 {
			rs.Points = append(rs.Points, 0)
		}
		rs.Points = append(rs.Points, s.Value)
	}
}

// Snapshot assembles the recording as it stands, without disturbing
// recorder state: the still-open tick (if any) is sampled into the
// returned copy only, so mid-run HTTP reads and the end-of-run flush
// use the same code path. Series are sorted by name then labels;
// traces come from the tracer's ring, oldest first.
func (f *FlightRecorder) Snapshot() *RunRecording {
	f.mu.Lock()
	rec := &RunRecording{
		SchemaVersion: RunSchemaVersion,
		RunMeta:       f.meta,
		Ticks:         append([]float64(nil), f.ticks...),
	}
	var snap []SeriesSample
	pendingVals := map[string]float64{}
	if f.pending {
		rec.Ticks = append(rec.Ticks, f.pendingTime)
		snap = f.reg.Snapshot()
		for _, s := range snap {
			pendingVals[s.Name+s.Labels] = s.Value
		}
	}
	nTicks := len(rec.Ticks)
	consumed := make(map[string]bool, len(f.series))
	for key, rs := range f.series {
		cp := RunSeries{Name: rs.Name, Labels: rs.Labels, Points: append([]float64(nil), rs.Points...)}
		if f.pending {
			cp.Points = append(cp.Points, pendingVals[key])
			consumed[key] = true
		}
		for len(cp.Points) < nTicks {
			cp.Points = append(cp.Points, 0)
		}
		rec.Series = append(rec.Series, cp)
	}
	// Series that first appeared during the still-open tick.
	for _, s := range snap {
		if consumed[s.Name+s.Labels] {
			continue
		}
		pts := make([]float64, nTicks)
		pts[nTicks-1] = s.Value
		rec.Series = append(rec.Series, RunSeries{Name: s.Name, Labels: s.Labels, Points: pts})
	}
	f.mu.Unlock()
	sortSeries(rec.Series)
	if rec.Series == nil {
		rec.Series = []RunSeries{}
	}
	rec.TraceStats = f.tracer.Stats()
	rec.Traces = f.tracer.Recent(0)
	return rec
}

func sortSeries(s []RunSeries) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Name != s[j].Name {
			return s[i].Name < s[j].Name
		}
		return s[i].Labels < s[j].Labels
	})
}

// Encode writes the recording as indented JSON.
func (r *RunRecording) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeRun parses one RUN_*.json document. It rejects a missing or
// unknown schema_version, trailing data, and series whose point count
// disagrees with the tick count, so a truncated or hand-edited file
// fails loudly.
func DecodeRun(rd io.Reader) (*RunRecording, error) {
	dec := json.NewDecoder(rd)
	var r RunRecording
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: decoding run recording: %w", err)
	}
	if r.SchemaVersion != RunSchemaVersion {
		return nil, fmt.Errorf("obs: unsupported run schema_version %d (this build reads version %d)",
			r.SchemaVersion, RunSchemaVersion)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("obs: trailing data after run recording")
	}
	for _, s := range r.Series {
		if len(s.Points) != len(r.Ticks) {
			return nil, fmt.Errorf("obs: series %s%s has %d points for %d ticks",
				s.Name, s.Labels, len(s.Points), len(r.Ticks))
		}
	}
	return &r, nil
}

// LoadRun reads and validates a RUN_*.json file.
func LoadRun(path string) (*RunRecording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := DecodeRun(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// WriteRunFile persists the recording to path atomically (temp file in
// the same directory, fsync, rename — the BENCH_*.json idiom, so a
// crash mid-write can never leave a truncated artifact). Unless force
// is set it refuses to overwrite an existing file.
func WriteRunFile(path string, r *RunRecording, force bool) error {
	if !force {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("obs: %s exists; pass force to overwrite", path)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("obs: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err := r.Encode(tmp); err != nil {
		return fmt.Errorf("obs: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("obs: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("obs: renaming into %s: %w", path, err)
	}
	tmpName = ""
	return nil
}

var _ Observer = (*FlightRecorder)(nil)
