package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"outlierlb/internal/metrics"
)

func TestEventLogRingEviction(t *testing.T) {
	log := NewEventLog(3)
	for i := 0; i < 5; i++ {
		log.Append(Event{Kind: EventQuota, Time: float64(i)})
	}
	if log.Total() != 5 {
		t.Fatalf("Total = %d, want 5", log.Total())
	}
	if log.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (capacity)", log.Len())
	}
	got := log.Recent(0)
	if len(got) != 3 {
		t.Fatalf("Recent(0) = %d events, want 3", len(got))
	}
	// Oldest-first, the two earliest events evicted.
	for i, e := range got {
		if e.Time != float64(i+2) {
			t.Errorf("event %d time = %v, want %v", i, e.Time, i+2)
		}
		if e.Seq != uint64(i+2) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+2)
		}
	}
	if tail := log.Recent(1); len(tail) != 1 || tail[0].Time != 4 {
		t.Errorf("Recent(1) = %+v, want just the newest event", tail)
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Time: 120, Kind: EventOutlier, App: "tpcw", Server: "db1",
		Class: "BestSeller", Level: "extreme",
		Fields: map[string]float64{"impact_misses": 42.5},
		Cause:  "metric impact outside IQR fences vs stable state",
	}
	s := e.String()
	for _, want := range []string{"t=120s", "outlier-context", "app=tpcw", "server=db1",
		"class=BestSeller", "level=extreme", "impact_misses=42.5", "IQR fences"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestEventJSONOmitsEmptyFields(t *testing.T) {
	b, err := json.Marshal(Event{Seq: 1, Time: 10, Kind: EventProvision, App: "tpcw"})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, absent := range []string{"server", "class", "level", "cause", "fields"} {
		if strings.Contains(s, `"`+absent+`"`) {
			t.Errorf("marshaled event %s should omit empty %q", s, absent)
		}
	}
}

func TestRegistryTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("test_events_total", "Events by kind.")
	r.Add("test_events_total", L("kind", "enforce-quota"), 2)
	r.Add("test_events_total", L("kind", "sla-violation"), 1)
	r.Set("test_gauge", nil, 0.5)
	r.Observe("test_latency_seconds", L("app", "tpcw"), 0.25)
	r.Observe("test_latency_seconds", L("app", "tpcw"), 0.75)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_events_total Events by kind.",
		"# TYPE test_events_total counter",
		`test_events_total{kind="enforce-quota"} 2`,
		`test_events_total{kind="sla-violation"} 1`,
		"# TYPE test_gauge gauge",
		"test_gauge 0.5",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{app="tpcw",le="0.001"} 0`,
		`test_latency_seconds_bucket{app="tpcw",le="0.5"} 1`,
		`test_latency_seconds_bucket{app="tpcw",le="1"} 2`,
		`test_latency_seconds_bucket{app="tpcw",le="60"} 2`,
		`test_latency_seconds_bucket{app="tpcw",le="+Inf"} 2`,
		`test_latency_seconds_sum{app="tpcw"} 1`,
		`test_latency_seconds_count{app="tpcw"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renders must match byte for byte.
	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("exposition is not deterministic across renders")
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Set("g", L("c", `a"b\c`+"\n"), 1)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if want := `g{c="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition = %q, want %q", b.String(), want)
	}
}

func TestRegistryTypeMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("using one metric as counter and gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Add("m", nil, 1)
	r.Set("m", nil, 2)
}

func TestRecorderCountsEventsAndOutliers(t *testing.T) {
	rec := NewRecorder(16)
	rec.Event(Event{Kind: EventQuota, App: "tpcw"})
	rec.Event(Event{Kind: EventOutlier, App: "tpcw", Class: "BestSeller", Level: "extreme"})
	rec.Event(Event{Kind: EventOutlier, App: "tpcw", Class: "NewProducts", Level: "mild"})

	reg := rec.Registry()
	if got := reg.Value(MetricEvents, L("kind", string(EventQuota))); got != 1 {
		t.Errorf("events{enforce-quota} = %v, want 1", got)
	}
	if got := reg.Value(MetricOutliers, L("level", "extreme")); got != 1 {
		t.Errorf("outliers{extreme} = %v, want 1", got)
	}
	if got := reg.Value(MetricOutliers, L("level", "mild")); got != 1 {
		t.Errorf("outliers{mild} = %v, want 1", got)
	}
	if rec.Events().Total() != 3 {
		t.Errorf("event log total = %d, want 3", rec.Events().Total())
	}
}

func TestRecorderVerboseMirrorsDecisionsNotSignatures(t *testing.T) {
	rec := NewRecorder(16)
	var b strings.Builder
	rec.SetVerbose(&b)
	rec.Event(Event{Kind: EventSignature, App: "tpcw"})
	rec.Event(Event{Kind: EventReschedule, App: "tpcw", Class: "BestSeller"})
	out := b.String()
	if strings.Contains(out, string(EventSignature)) {
		t.Error("verbose mirror should skip signature refreshes")
	}
	if !strings.Contains(out, string(EventReschedule)) {
		t.Errorf("verbose mirror missing the reschedule decision: %q", out)
	}
}

func TestRecorderIntervalAndSamples(t *testing.T) {
	rec := NewRecorder(16)
	rec.IntervalClosed(IntervalObs{
		Time: 10, App: "tpcw", AvgLatency: 0.3, P95Latency: 0.8, P99Latency: 1.2,
		Throughput: 50, Queries: 500, Met: false, Replicas: 2,
	})
	rec.ServerSampled(ServerObs{
		Time: 10, Server: "db1", CPU: 0.9, Disk: 0.2,
		Engines: []EngineObs{{Engine: "engine-0", HitRatio: 0.95, Resident: 8000, Capacity: 8192, QuotaKeys: 1}},
	})
	h := metrics.NewHistogram()
	h.Observe(0.2)
	rec.ClassLatency(ClassLatencyObs{
		Server: "db1", App: "tpcw", Class: "BestSeller",
		Count: 1, Mean: 0.2, P50: 0.2, P95: 0.2, P99: 0.2, Max: 0.2, Hist: h,
	})

	reg := rec.Registry()
	checks := []struct {
		name   string
		labels Labels
		want   float64
	}{
		{MetricViolations, L("app", "tpcw"), 1},
		{MetricIntervals, L("app", "tpcw", "met", "false"), 1},
		{MetricAppLatencyAvg, L("app", "tpcw"), 0.3},
		{MetricAppLatencyQ, L("app", "tpcw", "quantile", "0.99"), 1.2},
		{MetricAppReplicas, L("app", "tpcw"), 2},
		{MetricServerCPU, L("server", "db1"), 0.9},
		{MetricPoolHitRatio, L("server", "db1", "engine", "engine-0"), 0.95},
		{MetricVirtualTime, nil, 10},
	}
	for _, c := range checks {
		if got := reg.Value(c.name, c.labels); got != c.want {
			t.Errorf("%s%s = %v, want %v", c.name, c.labels.render(), got, c.want)
		}
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), MetricClassLatency+`_count{app="tpcw",class="BestSeller"} 1`) {
		t.Errorf("class latency summary missing from exposition:\n%s", b.String())
	}
}

// TestRecorderConcurrency exercises the Recorder from writer and reader
// goroutines simultaneously; run under -race this proves the HTTP server
// can read while the simulation writes.
func TestRecorderConcurrency(t *testing.T) {
	rec := NewRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Event(Event{Kind: EventQuota, App: "tpcw", Time: float64(i)})
				rec.IntervalClosed(IntervalObs{App: "tpcw", Queries: 1, Met: true, Replicas: 1})
				rec.ServerSampled(ServerObs{Server: "db1", CPU: 0.5})
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Events().Recent(0)
				var b strings.Builder
				_ = rec.Registry().WriteText(&b)
			}
		}()
	}
	wg.Wait()
	if rec.Events().Total() != 800 {
		t.Errorf("total events = %d, want 800", rec.Events().Total())
	}
}
