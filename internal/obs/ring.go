package obs

import "sync"

// EventLog is a fixed-capacity ring buffer of decision-trace events.
// Appends assign sequence numbers and evict the oldest event once the
// buffer is full, so a long run keeps the recent decision history at
// bounded memory. Safe for concurrent use: the simulation appends while
// HTTP handlers read.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	start int    // index of the oldest event
	n     int    // events currently held
	total uint64 // events ever appended; the next Seq
}

// NewEventLog returns an empty log holding at most capacity events
// (minimum 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// Append stores e, assigning its sequence number, and returns the stored
// event. The oldest event is evicted when the log is full.
func (l *EventLog) Append(e Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.total
	l.total++
	if l.n < len(l.buf) {
		l.buf[(l.start+l.n)%len(l.buf)] = e
		l.n++
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
	}
	return e
}

// Len reports how many events the log currently holds.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total reports how many events have ever been appended (evicted ones
// included).
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n of the most recent events, oldest first. n <= 0
// returns everything held.
func (l *EventLog) Recent(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]Event, n)
	first := l.start + l.n - n
	for i := 0; i < n; i++ {
		out[i] = l.buf[(first+i)%len(l.buf)]
	}
	return out
}
