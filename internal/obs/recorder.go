package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Metric names exposed by the Recorder. Kept as constants so tests, docs
// and scrape configs reference one spelling.
const (
	MetricEvents        = "outlierlb_events_total"
	MetricOutliers      = "outlierlb_outliers_total"
	MetricViolations    = "outlierlb_sla_violations_total"
	MetricIntervals     = "outlierlb_intervals_total"
	MetricAppLatencyAvg = "outlierlb_app_latency_avg_seconds"
	MetricAppLatencyQ   = "outlierlb_app_latency_quantile_seconds"
	MetricAppThroughput = "outlierlb_app_throughput_qps"
	MetricAppReplicas   = "outlierlb_app_replicas"
	MetricServerCPU     = "outlierlb_server_cpu_utilization"
	MetricServerDisk    = "outlierlb_server_disk_utilization"
	MetricPoolHitRatio  = "outlierlb_pool_hit_ratio"
	MetricPoolResident  = "outlierlb_pool_resident_pages"
	MetricPoolQuotas    = "outlierlb_pool_quotas"
	MetricClassLatency  = "outlierlb_class_latency_seconds"
	MetricClassLatencyQ = "outlierlb_class_latency_quantile_seconds"
	MetricVirtualTime   = "outlierlb_virtual_time_seconds"
	MetricMRCFed        = "outlierlb_mrc_fed_batches"
	MetricMRCDropped    = "outlierlb_mrc_dropped_batches"

	// Overload-protection metrics (admission control + brownout).
	MetricAdmitted   = "outlierlb_admission_admitted_total"
	MetricRejected   = "outlierlb_admission_rejected_total"
	MetricQueueDepth = "outlierlb_admission_queue_depth"
	MetricTokens     = "outlierlb_admission_tokens"
	MetricShedNow    = "outlierlb_admission_shed_classes"

	// Control-plane guardrail metrics (action watchdog).
	MetricGuardSuspects = "outlierlb_guard_suspects_total"
	MetricGuardReverts  = "outlierlb_guard_reverts_total"
	MetricGuardVetoes   = "outlierlb_guard_vetoes_total"
	MetricGuardTrips    = "outlierlb_guard_trips_total"

	// Control-channel metrics (message-passing control plane).
	MetricCtrlMessages     = "outlierlb_ctrl_messages_total"
	MetricCtrlRetries      = "outlierlb_ctrl_action_retries_total"
	MetricCtrlEpochRejects = "outlierlb_ctrl_epoch_rejections_total"
	MetricCtrlDupActions   = "outlierlb_ctrl_dup_actions_suppressed_total"
	MetricCtrlFDState      = "outlierlb_ctrl_failure_detector_state"
	MetricCtrlEpoch        = "outlierlb_ctrl_epoch"
	MetricCtrlAutonomous   = "outlierlb_ctrl_autonomous_engines"
)

// Recorder is the standard Observer: it appends every decision-trace
// event to a ring-buffered EventLog and maintains the metric registry the
// /metrics endpoint serves. Safe for concurrent use (the HTTP server
// reads while the simulation writes).
type Recorder struct {
	log *EventLog
	reg *Registry

	mu      sync.Mutex
	verbose io.Writer
}

// NewRecorder returns a recorder whose event log holds the most recent
// capacity events (minimum 1).
func NewRecorder(capacity int) *Recorder {
	r := &Recorder{log: NewEventLog(capacity), reg: NewRegistry()}
	r.reg.Help(MetricEvents, "Decision-trace events emitted, by kind.")
	r.reg.Help(MetricOutliers, "Outlier query contexts flagged, by strength level.")
	r.reg.Help(MetricViolations, "Measurement intervals that violated their application's SLA.")
	r.reg.Help(MetricIntervals, "Measurement intervals closed, by SLA outcome.")
	r.reg.Help(MetricAppLatencyAvg, "Average query latency of the last closed interval, per application.")
	r.reg.Help(MetricAppLatencyQ, "Query latency quantiles of the last closed interval, per application.")
	r.reg.Help(MetricAppThroughput, "Throughput of the last closed interval, per application.")
	r.reg.Help(MetricAppReplicas, "Replicas currently allocated, per application.")
	r.reg.Help(MetricServerCPU, "Mean core utilization over the last interval, per server.")
	r.reg.Help(MetricServerDisk, "Disk utilization over the last interval, per server.")
	r.reg.Help(MetricPoolHitRatio, "Buffer-pool hit ratio, per engine.")
	r.reg.Help(MetricPoolResident, "Resident buffer-pool pages, per engine.")
	r.reg.Help(MetricPoolQuotas, "Enforced buffer-pool quotas, per engine.")
	r.reg.Help(MetricClassLatency, "Per-query-class latency distribution across all intervals.")
	r.reg.Help(MetricClassLatencyQ, "Per-query-class latency quantiles of the last closed interval.")
	r.reg.Help(MetricVirtualTime, "Current virtual time of the simulation.")
	r.reg.Help(MetricMRCFed, "Page-access batches accepted by the background MRC worker, per engine.")
	r.reg.Help(MetricMRCDropped, "Page-access batches shed by the background MRC worker under backpressure, per engine.")
	r.reg.Help(MetricAdmitted, "Queries past the admission gate since startup, per class.")
	r.reg.Help(MetricRejected, "Queries rejected by admission control since startup, per class and reason.")
	r.reg.Help(MetricQueueDepth, "Bounded in-flight queue depth, per application and server.")
	r.reg.Help(MetricTokens, "Admission token-bucket level, per application (-1 when the token gate is off).")
	r.reg.Help(MetricShedNow, "Query classes currently on the brownout shed list, per application.")
	r.reg.Help(MetricGuardSuspects, "Controller actions whose post-action fitness regressed beyond tolerance, per application.")
	r.reg.Help(MetricGuardReverts, "Controller actions rolled back by the action watchdog, per application.")
	r.reg.Help(MetricGuardVetoes, "Controller actions blocked by guardrails before running, by reason.")
	r.reg.Help(MetricGuardTrips, "Action-storm circuit openings (diagnosis suspended), per application.")
	r.reg.Help(MetricCtrlMessages, "Control-channel messages since startup, by transport outcome.")
	r.reg.Help(MetricCtrlRetries, "Control-action RPC retransmissions after ack timeout.")
	r.reg.Help(MetricCtrlEpochRejects, "Actions rejected engine-side for carrying a deposed control epoch.")
	r.reg.Help(MetricCtrlDupActions, "Duplicate action deliveries suppressed engine-side (idempotent re-ack).")
	r.reg.Help(MetricCtrlFDState, "Controller failure-detector verdict per server (0 reachable, 1 suspect, 2 unreachable).")
	r.reg.Help(MetricCtrlEpoch, "Current control-plane fencing epoch.")
	r.reg.Help(MetricCtrlAutonomous, "Engines currently running on their local lease (rejecting actions).")
	return r
}

// Events exposes the ring-buffered decision trace.
func (r *Recorder) Events() *EventLog { return r.log }

// Registry exposes the metric registry.
func (r *Recorder) Registry() *Registry { return r.reg }

// SetVerbose mirrors every decision event (everything except the
// per-interval signature refreshes) as one human-readable line to w.
// Pass nil to disable.
func (r *Recorder) SetVerbose(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.verbose = w
}

// Event implements Observer.
func (r *Recorder) Event(e Event) {
	e = r.log.Append(e)
	r.reg.Add(MetricEvents, L("kind", string(e.Kind)), 1)
	if e.Kind == EventOutlier {
		r.reg.Add(MetricOutliers, L("level", e.Level), 1)
	}
	switch e.Kind {
	case EventActionSuspect:
		r.reg.Add(MetricGuardSuspects, L("app", e.App), 1)
	case EventActionReverted:
		r.reg.Add(MetricGuardReverts, L("app", e.App), 1)
	case EventGuardVeto:
		r.reg.Add(MetricGuardVetoes, L("reason", e.Level), 1)
	case EventGuardTripped:
		r.reg.Add(MetricGuardTrips, L("app", e.App), 1)
	}
	if e.Kind == EventSignature {
		return // stable-state bookkeeping, too chatty for the mirror
	}
	r.mu.Lock()
	w := r.verbose
	r.mu.Unlock()
	if w != nil {
		fmt.Fprintln(w, e.String())
	}
}

// IntervalClosed implements Observer.
func (r *Recorder) IntervalClosed(iv IntervalObs) {
	app := L("app", iv.App)
	r.reg.Add(MetricIntervals, L("app", iv.App, "met", strconv.FormatBool(iv.Met)), 1)
	if !iv.Met {
		r.reg.Add(MetricViolations, app, 1)
	}
	r.reg.Set(MetricAppReplicas, app, float64(iv.Replicas))
	r.reg.Set(MetricVirtualTime, nil, iv.Time)
	if iv.Queries == 0 {
		return
	}
	r.reg.Set(MetricAppLatencyAvg, app, iv.AvgLatency)
	r.reg.Set(MetricAppLatencyQ, L("app", iv.App, "quantile", "0.95"), iv.P95Latency)
	r.reg.Set(MetricAppLatencyQ, L("app", iv.App, "quantile", "0.99"), iv.P99Latency)
	r.reg.Set(MetricAppThroughput, app, iv.Throughput)
}

// ServerSampled implements Observer.
func (r *Recorder) ServerSampled(s ServerObs) {
	srv := L("server", s.Server)
	r.reg.Set(MetricServerCPU, srv, s.CPU)
	r.reg.Set(MetricServerDisk, srv, s.Disk)
	for _, e := range s.Engines {
		eng := L("server", s.Server, "engine", e.Engine)
		r.reg.Set(MetricPoolHitRatio, eng, e.HitRatio)
		r.reg.Set(MetricPoolResident, eng, float64(e.Resident))
		r.reg.Set(MetricPoolQuotas, eng, float64(e.QuotaKeys))
		if e.MRCFed > 0 || e.MRCDropped > 0 {
			r.reg.Set(MetricMRCFed, eng, float64(e.MRCFed))
			r.reg.Set(MetricMRCDropped, eng, float64(e.MRCDropped))
		}
	}
}

// ClassLatency implements Observer.
func (r *Recorder) ClassLatency(cl ClassLatencyObs) {
	if cl.Count == 0 {
		return
	}
	// Cumulative per-query distribution across the run (le-bucketed
	// histogram with sum and count)…
	r.reg.ObserveHistogram(MetricClassLatency, L("app", cl.App, "class", cl.Class), cl.Hist)
	// …and the last interval's quantiles from the class histogram.
	r.reg.Set(MetricClassLatencyQ, L("app", cl.App, "class", cl.Class, "quantile", "0.5"), cl.P50)
	r.reg.Set(MetricClassLatencyQ, L("app", cl.App, "class", cl.Class, "quantile", "0.95"), cl.P95)
	r.reg.Set(MetricClassLatencyQ, L("app", cl.App, "class", cl.Class, "quantile", "0.99"), cl.P99)
}

// AdmissionSampled implements Observer.
func (r *Recorder) AdmissionSampled(a AdmissionObs) {
	app := L("app", a.App)
	r.reg.Set(MetricTokens, app, a.Tokens)
	r.reg.Set(MetricShedNow, app, float64(len(a.ShedClasses)))
	for _, q := range a.Queues {
		r.reg.Set(MetricQueueDepth, L("app", a.App, "server", q.Server), float64(q.Depth))
	}
	for _, c := range a.Classes {
		r.reg.Set(MetricAdmitted, L("app", a.App, "class", c.Class), float64(c.Admitted))
		set := func(reason string, v int64) {
			if v > 0 {
				r.reg.Set(MetricRejected, L("app", a.App, "class", c.Class, "reason", reason), float64(v))
			}
		}
		set(string(ReasonShedLabel), c.Shed)
		set(string(ReasonThrottledLabel), c.Throttled)
		set(string(ReasonQueueFullLabel), c.QueueRejected)
		set(string(ReasonDeadlineLabel), c.DeadlineRejected)
	}
}

// CtrlSampled implements Observer. Transport and protocol counters are
// lifetime totals, so the registry Sets them (same replayed-counter
// convention as AdmissionSampled).
func (r *Recorder) CtrlSampled(c CtrlObs) {
	r.reg.Set(MetricCtrlMessages, L("result", "sent"), float64(c.Sent))
	r.reg.Set(MetricCtrlMessages, L("result", "delivered"), float64(c.Delivered))
	if c.Dropped > 0 {
		r.reg.Set(MetricCtrlMessages, L("result", "dropped"), float64(c.Dropped))
	}
	if c.Duplicated > 0 {
		r.reg.Set(MetricCtrlMessages, L("result", "duplicated"), float64(c.Duplicated))
	}
	r.reg.Set(MetricCtrlRetries, nil, float64(c.ActionRetries))
	r.reg.Set(MetricCtrlEpochRejects, nil, float64(c.EpochRejections))
	r.reg.Set(MetricCtrlDupActions, nil, float64(c.DupSuppressed))
	r.reg.Set(MetricCtrlEpoch, nil, float64(c.Epoch))
	autonomous := 0
	for _, s := range c.Servers {
		var v float64
		switch s.State {
		case "suspect":
			v = 1
		case "unreachable":
			v = 2
		}
		r.reg.Set(MetricCtrlFDState, L("server", s.Server), v)
		if s.Autonomous {
			autonomous++
		}
	}
	r.reg.Set(MetricCtrlAutonomous, nil, float64(autonomous))
}

// Rejection-reason label values, shared with internal/admission's
// Reason constants (obs cannot import admission — the dependency runs
// the other way).
const (
	ReasonShedLabel      = "class-shed"
	ReasonThrottledLabel = "throttled"
	ReasonQueueFullLabel = "queue-full"
	ReasonDeadlineLabel  = "deadline"
)

var _ Observer = (*Recorder)(nil)
