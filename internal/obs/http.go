package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// DiagnoseFunc produces a live diagnosis for the named server — the
// /debug/diagnosis handler's backend. Implementations return any
// JSON-marshalable value (in this codebase, []*core.DiagnosisReport).
// Returning an error yields a 404/503 depending on Retryable.
type DiagnoseFunc func(server string) (interface{}, error)

// NotReadyError marks a diagnosis request that arrived before the data
// source is safe to read (e.g. the simulation is still running in
// another goroutine). The handler maps it to 503 instead of 404.
type NotReadyError struct{ Reason string }

func (e NotReadyError) Error() string { return e.Reason }

// MuxConfig wires the debug endpoints to their data sources. Any nil
// source disables its endpoints with 404s rather than panics.
type MuxConfig struct {
	// Log backs /debug/decisions.
	Log *EventLog
	// Registry backs /metrics.
	Registry *Registry
	// Diagnose backs /debug/diagnosis.
	Diagnose DiagnoseFunc
}

// decisionsResponse is the /debug/decisions payload.
type decisionsResponse struct {
	// Total is how many events were ever emitted; the ring buffer may
	// hold fewer.
	Total uint64 `json:"total"`
	// Events holds the most recent events, oldest first.
	Events []Event `json:"events"`
}

// NewMux returns an http.ServeMux serving the observability endpoints:
//
//	/healthz              liveness probe ("ok")
//	/metrics              Prometheus text exposition
//	/debug/decisions      recent decision-trace events as JSON
//	                      (?n=limit, ?kind=, ?app= filters)
//	/debug/diagnosis      live DiagnosisReport (?server=name)
func NewMux(cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if cfg.Registry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = cfg.Registry.WriteText(w)
		})
	}
	if cfg.Log != nil {
		mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, req *http.Request) {
			n := 0
			if s := req.URL.Query().Get("n"); s != "" {
				v, err := strconv.Atoi(s)
				if err != nil || v < 0 {
					http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
					return
				}
				n = v
			}
			kind := req.URL.Query().Get("kind")
			app := req.URL.Query().Get("app")
			events := cfg.Log.Recent(0)
			if kind != "" || app != "" {
				filtered := events[:0]
				for _, e := range events {
					if kind != "" && string(e.Kind) != kind {
						continue
					}
					if app != "" && e.App != app {
						continue
					}
					filtered = append(filtered, e)
				}
				events = filtered
			}
			if n > 0 && len(events) > n {
				events = events[len(events)-n:]
			}
			if events == nil {
				events = []Event{}
			}
			writeJSON(w, decisionsResponse{Total: cfg.Log.Total(), Events: events})
		})
	}
	if cfg.Diagnose != nil {
		mux.HandleFunc("/debug/diagnosis", func(w http.ResponseWriter, req *http.Request) {
			srv := req.URL.Query().Get("server")
			if srv == "" {
				http.Error(w, "missing ?server= parameter", http.StatusBadRequest)
				return
			}
			report, err := cfg.Diagnose(srv)
			if err != nil {
				code := http.StatusNotFound
				if _, notReady := err.(NotReadyError); notReady {
					code = http.StatusServiceUnavailable
				}
				http.Error(w, err.Error(), code)
				return
			}
			writeJSON(w, report)
		})
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve listens on addr and serves the debug endpoints in a background
// goroutine, returning the server and the bound address (useful with
// ":0"). The caller shuts it down via srv.Close.
func Serve(addr string, cfg MuxConfig) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(cfg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
