package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// DiagnoseFunc produces a live diagnosis for the named server — the
// /debug/diagnosis handler's backend. Implementations return any
// JSON-marshalable value (in this codebase, []*core.DiagnosisReport).
// Returning an error yields a 404/503 depending on Retryable.
type DiagnoseFunc func(server string) (interface{}, error)

// NotReadyError marks a diagnosis request that arrived before the data
// source is safe to read (e.g. the simulation is still running in
// another goroutine). The handler maps it to 503 instead of 404.
type NotReadyError struct{ Reason string }

func (e NotReadyError) Error() string { return e.Reason }

// MuxConfig wires the debug endpoints to their data sources. Any nil
// source disables its endpoints with 404s rather than panics.
type MuxConfig struct {
	// Log backs /debug/decisions.
	Log *EventLog
	// Registry backs /metrics.
	Registry *Registry
	// Diagnose backs /debug/diagnosis.
	Diagnose DiagnoseFunc
	// Tracer backs /debug/trace/{id} and the trace list.
	Tracer *Tracer
	// Flight backs /debug/runs with a live recording snapshot.
	Flight *FlightRecorder
	// PProf mounts net/http/pprof under /debug/pprof/ (opt-in: profiles
	// expose process internals, so tools gate this behind a flag).
	PProf bool
}

// traceSummary is one row of the /debug/trace listing.
type traceSummary struct {
	Trace    TraceID `json:"trace"`
	App      string  `json:"app,omitempty"`
	Class    string  `json:"class,omitempty"`
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	Spans    int     `json:"spans"`
	Err      string  `json:"err,omitempty"`
}

func countSpans(s *Span) int {
	n := 1
	for _, c := range s.Children {
		n += countSpans(c)
	}
	return n
}

// decisionsResponse is the /debug/decisions payload.
type decisionsResponse struct {
	// Total is how many events were ever emitted; the ring buffer may
	// hold fewer.
	Total uint64 `json:"total"`
	// Events holds the most recent events, oldest first.
	Events []Event `json:"events"`
}

// NewMux returns an http.ServeMux serving the observability endpoints:
//
//	/healthz              liveness probe ("ok")
//	/metrics              Prometheus text exposition
//	/debug/decisions      recent decision-trace events as JSON
//	                      (?n=limit, ?kind=, ?app= filters)
//	/debug/diagnosis      live DiagnosisReport (?server=name)
//	/debug/trace          recent finished traces, summarized (?n=limit)
//	/debug/trace/{id}     one finished trace's full span tree
//	/debug/runs           live flight-recorder snapshot (RUN_*.json shape)
//	/debug/pprof/         net/http/pprof, only when cfg.PProf is set
func NewMux(cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if cfg.Registry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = cfg.Registry.WriteText(w)
		})
	}
	if cfg.Log != nil {
		mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, req *http.Request) {
			n := 0
			if s := req.URL.Query().Get("n"); s != "" {
				v, err := strconv.Atoi(s)
				if err != nil || v < 0 {
					http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
					return
				}
				n = v
			}
			kind := req.URL.Query().Get("kind")
			app := req.URL.Query().Get("app")
			events := cfg.Log.Recent(0)
			if kind != "" || app != "" {
				filtered := events[:0]
				for _, e := range events {
					if kind != "" && string(e.Kind) != kind {
						continue
					}
					if app != "" && e.App != app {
						continue
					}
					filtered = append(filtered, e)
				}
				events = filtered
			}
			if n > 0 && len(events) > n {
				events = events[len(events)-n:]
			}
			if events == nil {
				events = []Event{}
			}
			writeJSON(w, decisionsResponse{Total: cfg.Log.Total(), Events: events})
		})
	}
	if cfg.Tracer != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
			n := 0
			if s := req.URL.Query().Get("n"); s != "" {
				v, err := strconv.Atoi(s)
				if err != nil || v < 0 {
					http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
					return
				}
				n = v
			}
			traces := cfg.Tracer.Recent(n)
			summaries := make([]traceSummary, 0, len(traces))
			for _, t := range traces {
				summaries = append(summaries, traceSummary{
					Trace: t.Trace, App: t.App, Class: t.Class,
					Start: t.Start, Duration: t.End - t.Start,
					Spans: countSpans(t), Err: t.Err,
				})
			}
			writeJSON(w, struct {
				Stats  TraceStats     `json:"stats"`
				Traces []traceSummary `json:"traces"`
			}{cfg.Tracer.Stats(), summaries})
		})
		mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, req *http.Request) {
			raw := strings.TrimPrefix(req.URL.Path, "/debug/trace/")
			id, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				http.Error(w, "trace id must be the decimal TraceID", http.StatusBadRequest)
				return
			}
			root := cfg.Tracer.Get(TraceID(id))
			if root == nil {
				http.Error(w, "trace not found (not sampled, unfinished, or evicted)", http.StatusNotFound)
				return
			}
			writeJSON(w, struct {
				Root   *Span  `json:"root"`
				Phases Phases `json:"phases"`
			}{root, Breakdown(root)})
		})
	}
	if cfg.Flight != nil {
		mux.HandleFunc("/debug/runs", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, cfg.Flight.Snapshot())
		})
	}
	if cfg.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if cfg.Diagnose != nil {
		mux.HandleFunc("/debug/diagnosis", func(w http.ResponseWriter, req *http.Request) {
			srv := req.URL.Query().Get("server")
			if srv == "" {
				http.Error(w, "missing ?server= parameter", http.StatusBadRequest)
				return
			}
			report, err := cfg.Diagnose(srv)
			if err != nil {
				code := http.StatusNotFound
				if _, notReady := err.(NotReadyError); notReady {
					code = http.StatusServiceUnavailable
				}
				http.Error(w, err.Error(), code)
				return
			}
			writeJSON(w, report)
		})
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve listens on addr and serves the debug endpoints in a background
// goroutine, returning the server and the bound address (useful with
// ":0"). The caller shuts it down via srv.Close.
func Serve(addr string, cfg MuxConfig) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(cfg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
