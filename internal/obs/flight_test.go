package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tickFlight closes one controller tick for two apps — the recorder must
// count it once.
func tickFlight(f *FlightRecorder, t float64) {
	f.IntervalClosed(IntervalObs{Time: t, App: "tpcw"})
	f.IntervalClosed(IntervalObs{Time: t, App: "rubis"})
}

func TestFlightRecorderTicksAndBackfill(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(1, 1.0, 8)
	f := NewFlightRecorder(reg, tr, RunMeta{Tool: "test", Scenario: "unit", Seed: 1, SampleRate: 1})

	reg.Set("alpha", nil, 1)
	tickFlight(f, 10)
	reg.Set("alpha", nil, 2)
	tickFlight(f, 20) // seals tick 10 with alpha=2 (sampled when 20 opens)
	reg.Set("alpha", nil, 3)
	reg.Set("beta", L("app", "tpcw"), 7) // born during tick 20
	sp := tr.StartQuery(25, "tpcw", "Home")
	sp.Finish(26)
	tickFlight(f, 30) // seals tick 20

	rec := f.Snapshot()
	if want := []float64{10, 20, 30}; len(rec.Ticks) != 3 || rec.Ticks[0] != want[0] || rec.Ticks[2] != want[2] {
		t.Fatalf("ticks = %v, want %v", rec.Ticks, want)
	}
	series := map[string][]float64{}
	for _, s := range rec.Series {
		series[s.Name+s.Labels] = s.Points
	}
	// Tick T is sampled when tick T+1 opens, so tick 10 carries the
	// writes made during interval 10 (alpha=2); the still-open tick 30
	// carries the live value.
	if got := series["alpha"]; len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("alpha points = %v, want [2 3 3]", got)
	}
	// beta was born during tick 20: zero-backfilled for tick 10.
	if got := series[`beta{app="tpcw"}`]; len(got) != 3 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("beta points = %v, want [0 7 7]", got)
	}
	if rec.TraceStats.Finished != 1 || len(rec.Traces) != 1 {
		t.Fatalf("recording carries %d finished / %d traces, want 1/1", rec.TraceStats.Finished, len(rec.Traces))
	}

	// Snapshot must not consume the pending tick: a second snapshot sees
	// the same ticks, and recording continues cleanly.
	rec2 := f.Snapshot()
	if len(rec2.Ticks) != 3 {
		t.Fatalf("second snapshot has %d ticks, want 3 (Snapshot must not disturb state)", len(rec2.Ticks))
	}
	reg.Set("alpha", nil, 4)
	tickFlight(f, 40)
	if rec3 := f.Snapshot(); len(rec3.Ticks) != 4 {
		t.Fatalf("after another tick: %d ticks, want 4", len(rec3.Ticks))
	}
}

func TestRunFileRoundTrip(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(2, 1.0, 8)
	f := NewFlightRecorder(reg, tr, RunMeta{Tool: "test", Scenario: "roundtrip", Seed: 2, SampleRate: 0.5})
	reg.Add("events_total", L("kind", "x"), 3)
	reg.Observe("lat_seconds", nil, 0.2)
	sp := tr.StartQuery(1, "tpcw", "Home")
	sp.Child(1.1, SpanAttempt, "db1").Finish(1.9)
	sp.Finish(2)
	tickFlight(f, 10)
	tickFlight(f, 20)

	path := filepath.Join(t.TempDir(), "RUN_test.json")
	rec := f.Snapshot()
	if err := WriteRunFile(path, rec, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteRunFile(path, rec, false); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("overwrite without force: err = %v", err)
	}
	if err := WriteRunFile(path, rec, true); err != nil {
		t.Fatalf("forced overwrite: %v", err)
	}

	got, err := LoadRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != RunSchemaVersion || got.Scenario != "roundtrip" || got.Seed != 2 || got.SampleRate != 0.5 {
		t.Fatalf("meta round-trip mismatch: %+v", got.RunMeta)
	}
	if len(got.Ticks) != len(rec.Ticks) || len(got.Series) != len(rec.Series) {
		t.Fatalf("shape mismatch: %d/%d ticks, %d/%d series",
			len(got.Ticks), len(rec.Ticks), len(got.Series), len(rec.Series))
	}
	// Histograms flatten into _count/_sum series.
	names := map[string]bool{}
	for _, s := range got.Series {
		names[s.Name] = true
	}
	if !names["lat_seconds_count"] || !names["lat_seconds_sum"] {
		t.Fatalf("histogram series missing from %v", names)
	}
	if len(got.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(got.Traces))
	}
	if err := Validate(got.Traces[0]); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
	if got.Traces[0].Children[0].Name != "db1" {
		t.Error("child span lost in round trip")
	}
}

func TestDecodeRunStrict(t *testing.T) {
	for name, doc := range map[string]string{
		"wrong version": `{"schema_version": 99, "seed": 1, "sample_rate": 0, "ticks": [], "series": [], "trace_stats": {"started":0,"sampled":0,"finished":0,"evicted":0}}`,
		"trailing data": `{"schema_version": 1, "seed": 1, "sample_rate": 0, "ticks": [], "series": [], "trace_stats": {"started":0,"sampled":0,"finished":0,"evicted":0}} {"extra": true}`,
		"point count":   `{"schema_version": 1, "seed": 1, "sample_rate": 0, "ticks": [1, 2], "series": [{"name": "x", "points": [5]}], "trace_stats": {"started":0,"sampled":0,"finished":0,"evicted":0}}`,
		"not json":      `[what]`,
	} {
		if _, err := DecodeRun(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := `{"schema_version": 1, "seed": 1, "sample_rate": 0, "ticks": [1], "series": [{"name": "x", "points": [5]}], "trace_stats": {"started":0,"sampled":0,"finished":0,"evicted":0}}`
	if _, err := DecodeRun(strings.NewReader(ok)); err != nil {
		t.Errorf("minimal valid doc rejected: %v", err)
	}
	if _, err := LoadRun(filepath.Join(t.TempDir(), "nope.json")); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v", err)
	}
}

func TestFlightRecorderEmptyRun(t *testing.T) {
	f := NewFlightRecorder(NewRegistry(), nil, RunMeta{})
	rec := f.Snapshot()
	if rec.Ticks == nil || len(rec.Ticks) != 0 {
		// Ticks may be a nil slice; what matters is emptiness.
		if len(rec.Ticks) != 0 {
			t.Fatalf("empty run has %d ticks", len(rec.Ticks))
		}
	}
	if rec.Series == nil {
		t.Fatal("Series must encode as [] not null")
	}
	path := filepath.Join(t.TempDir(), "RUN_empty.json")
	if err := WriteRunFile(path, rec, false); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRun(path); err != nil {
		t.Fatalf("empty recording does not round-trip: %v", err)
	}
}
