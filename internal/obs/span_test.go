package obs

import (
	"math"
	"testing"
)

// buildTrace assembles a representative query trace on tr: a failed
// first attempt, a backoff wait, then a successful attempt whose exec
// splits into cpu and disk.
func buildTrace(tr *Tracer) *Span {
	root := tr.StartQuery(0, "tpcw", "Home")
	if root == nil {
		return nil
	}
	a1 := root.Child(0.1, SpanAttempt, "db1")
	e1 := a1.Child(0.1, SpanExec, "engine-0")
	e1.Finish(0.3)
	a1.Fail("replica unresponsive")
	a1.Finish(0.3)
	root.Child(0.3, SpanRetryWait, "backoff after attempt 1").Finish(0.4)
	a2 := root.Child(0.4, SpanAttempt, "db2")
	e2 := a2.Child(0.45, SpanExec, "engine-1")
	e2.Child(0.45, SpanCPU, "").Finish(0.6)
	e2.Child(0.6, SpanDisk, "").Finish(0.9)
	e2.Finish(0.9)
	a2.Finish(0.9)
	root.Finish(1.0)
	return root
}

func TestTracerSamplingDeterministic(t *testing.T) {
	pick := func(seed uint64, rate float64, n int) []uint64 {
		tr := NewTracer(seed, rate, 16)
		var ids []uint64
		for i := 0; i < n; i++ {
			if sp := tr.StartQuery(0, "a", "c"); sp != nil {
				ids = append(ids, uint64(sp.Trace))
				sp.Finish(1)
			}
		}
		return ids
	}
	a := pick(7, 0.25, 400)
	b := pick(7, 0.25, 400)
	if len(a) == 0 || len(a) == 400 {
		t.Fatalf("rate 0.25 sampled %d/400 queries", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed sampled %d then %d queries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace ids diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// The fraction should be in the neighborhood of the rate.
	frac := float64(len(a)) / 400
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("rate 0.25 sampled fraction %.2f", frac)
	}
	// Distinct seeds must make different picks (mix64 decorrelates them).
	c := pick(8, 0.25, 400)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 7 and 8 made identical sampling decisions")
	}
}

func TestTracerDisabledAndNil(t *testing.T) {
	var nilTracer *Tracer
	if sp := nilTracer.StartQuery(0, "a", "c"); sp != nil {
		t.Fatal("nil tracer sampled a query")
	}
	nilTracer.SetCurrent(nil)
	if nilTracer.Current() != nil || nilTracer.Get(1) != nil || nilTracer.Recent(0) != nil {
		t.Fatal("nil tracer accessors not inert")
	}
	if got := nilTracer.Stats(); got != (TraceStats{}) {
		t.Fatalf("nil tracer stats = %+v", got)
	}

	tr := NewTracer(1, 0, 4)
	for i := 0; i < 100; i++ {
		if sp := tr.StartQuery(0, "a", "c"); sp != nil {
			t.Fatal("rate-0 tracer sampled a query")
		}
	}
	// A disabled tracer does no per-query work, not even counting.
	st := tr.Stats()
	if st.Started != 0 || st.Sampled != 0 {
		t.Fatalf("stats = %+v, want 0 started, 0 sampled", st)
	}

	// Nil span methods must all be no-ops.
	var sp *Span
	if sp.Child(0, SpanExec, "x") != nil {
		t.Fatal("nil span spawned a child")
	}
	sp.Annotate("k", 1)
	sp.AddEvent(0, EventAdmitted, "", nil)
	sp.Fail("x")
	sp.Finish(1)
	if sp.TraceID() != 0 || sp.Root() != nil {
		t.Fatal("nil span accessors not inert")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3, 1.0, 4)
	var ids []TraceID
	for i := 0; i < 7; i++ {
		sp := tr.StartQuery(float64(i), "a", "c")
		ids = append(ids, sp.Trace)
		sp.Finish(float64(i) + 0.5)
	}
	st := tr.Stats()
	if st.Finished != 7 || st.Evicted != 3 {
		t.Fatalf("stats = %+v, want 7 finished, 3 evicted", st)
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recent))
	}
	for i, root := range recent {
		if root.Trace != ids[3+i] {
			t.Fatalf("ring[%d] = trace %d, want %d (oldest-first order)", i, root.Trace, ids[3+i])
		}
	}
	if tr.Get(ids[0]) != nil {
		t.Error("evicted trace still resolvable by ID")
	}
	if tr.Get(ids[6]) == nil {
		t.Error("retained trace not resolvable by ID")
	}
	if tr.Recent(2)[1].Trace != ids[6] {
		t.Error("Recent(n) did not keep the newest traces")
	}
}

func TestValidate(t *testing.T) {
	tr := NewTracer(1, 1.0, 4)
	root := buildTrace(tr)
	if err := Validate(root); err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}

	// Corrupt a child's parent link: must be flagged as an orphan.
	tr2 := NewTracer(1, 1.0, 4)
	bad := buildTrace(tr2)
	bad.Children[0].Parent = 99
	if err := Validate(bad); err == nil {
		t.Error("orphaned child not detected")
	}

	tr3 := NewTracer(1, 1.0, 4)
	bad = buildTrace(tr3)
	bad.Children[1].Trace++
	if err := Validate(bad); err == nil {
		t.Error("foreign trace id not detected")
	}

	tr4 := NewTracer(1, 1.0, 4)
	bad = buildTrace(tr4)
	bad.Children[0].ID = bad.ID
	bad.Children[0].Children[0].Parent = bad.ID
	if err := Validate(bad); err == nil {
		t.Error("duplicate span id not detected")
	}

	if err := Validate(nil); err == nil {
		t.Error("nil root not rejected")
	}
}

func TestBreakdownExactPartition(t *testing.T) {
	tr := NewTracer(1, 1.0, 4)
	root := buildTrace(tr)
	p := Breakdown(root)
	total := root.End - root.Start
	if sum := p.Queue + p.Service + p.Retry; math.Abs(sum-total) > 1e-12 {
		t.Fatalf("phases sum %.6f != total %.6f", sum, total)
	}
	// Service: exec under the successful attempt only, [0.45, 0.9].
	if math.Abs(p.Service-0.45) > 1e-9 {
		t.Errorf("service = %.6f, want 0.45", p.Service)
	}
	// Retry: failed attempt [0.1,0.3] + backoff [0.3,0.4] = 0.3.
	if math.Abs(p.Retry-0.3) > 1e-9 {
		t.Errorf("retry = %.6f, want 0.30", p.Retry)
	}
	// Queue: the remainder — admission at [0,0.1] plus the successful
	// attempt's pre-exec wait [0.4,0.45].
	if math.Abs(p.Queue-0.25) > 1e-9 {
		t.Errorf("queue = %.6f, want 0.25", p.Queue)
	}
	if Breakdown(nil) != (Phases{}) {
		t.Error("nil root breakdown not zero")
	}
}

func TestCriticalPath(t *testing.T) {
	tr := NewTracer(1, 1.0, 4)
	root := buildTrace(tr)
	path := CriticalPath(root)
	want := []SpanKind{SpanQuery, SpanAttempt, SpanExec, SpanDisk}
	if len(path) != len(want) {
		t.Fatalf("critical path length %d, want %d", len(path), len(want))
	}
	for i, k := range want {
		if path[i].Kind != k {
			t.Fatalf("path[%d].Kind = %s, want %s", i, path[i].Kind, k)
		}
	}
	if path[1].Name != "db2" {
		t.Errorf("critical attempt is %q, want the successful db2", path[1].Name)
	}
	if CriticalPath(nil) != nil {
		t.Error("nil root critical path not nil")
	}
}

func TestSpanFinishClampsAndPublishes(t *testing.T) {
	tr := NewTracer(1, 1.0, 4)
	root := tr.StartQuery(5, "a", "c")
	if tr.Current() != root {
		t.Fatal("StartQuery did not set the current span")
	}
	c := root.Child(5, SpanExec, "x")
	c.Finish(4) // ends "before" it starts: clamped
	if c.End != c.Start {
		t.Fatalf("Finish did not clamp: end %g, start %g", c.End, c.Start)
	}
	root.Finish(6)
	if tr.Current() != nil {
		t.Fatal("finishing the root did not clear the current span")
	}
	if tr.Get(root.Trace) != root {
		t.Fatal("finished root not published to the ring")
	}
}
