package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testMux(t *testing.T) (*Recorder, *httptest.Server) {
	t.Helper()
	rec := NewRecorder(16)
	srv := httptest.NewServer(NewMux(MuxConfig{
		Log:      rec.Events(),
		Registry: rec.Registry(),
		Diagnose: func(server string) (interface{}, error) {
			switch server {
			case "db1":
				return map[string]string{"server": "db1"}, nil
			case "warming":
				return nil, NotReadyError{Reason: "still running"}
			default:
				return nil, io.EOF // any non-NotReady error → 404
			}
		},
	}))
	t.Cleanup(srv.Close)
	return rec, srv
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHealthz(t *testing.T) {
	_, srv := testMux(t)
	code, body, _ := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	rec, srv := testMux(t)
	rec.Event(Event{Kind: EventQuota, App: "tpcw"})
	code, body, hdr := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want the 0.0.4 text exposition", ct)
	}
	if !strings.Contains(body, MetricEvents+`{kind="enforce-quota"} 1`) {
		t.Errorf("metrics body missing event counter:\n%s", body)
	}
}

func TestDecisionsEndpointFilters(t *testing.T) {
	rec, srv := testMux(t)
	rec.Event(Event{Kind: EventViolation, App: "tpcw", Time: 10})
	rec.Event(Event{Kind: EventOutlier, App: "tpcw", Class: "BestSeller", Time: 10})
	rec.Event(Event{Kind: EventViolation, App: "rubis", Time: 20})

	var got struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	decode := func(url string) {
		t.Helper()
		code, body, _ := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("%s status = %d", url, code)
		}
		got.Events = nil
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatalf("%s: %v\n%s", url, err, body)
		}
	}

	decode(srv.URL + "/debug/decisions")
	if got.Total != 3 || len(got.Events) != 3 {
		t.Fatalf("unfiltered: total=%d events=%d, want 3/3", got.Total, len(got.Events))
	}
	decode(srv.URL + "/debug/decisions?kind=sla-violation")
	if len(got.Events) != 2 {
		t.Errorf("kind filter: %d events, want 2", len(got.Events))
	}
	decode(srv.URL + "/debug/decisions?app=rubis")
	if len(got.Events) != 1 || got.Events[0].App != "rubis" {
		t.Errorf("app filter: %+v", got.Events)
	}
	decode(srv.URL + "/debug/decisions?n=1")
	if len(got.Events) != 1 || got.Events[0].Time != 20 {
		t.Errorf("n=1 should return only the newest event: %+v", got.Events)
	}
	if code, _, _ := get(t, srv.URL+"/debug/decisions?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", code)
	}
}

func TestDiagnosisEndpointStatusCodes(t *testing.T) {
	_, srv := testMux(t)
	if code, _, _ := get(t, srv.URL+"/debug/diagnosis"); code != http.StatusBadRequest {
		t.Errorf("missing server param: %d, want 400", code)
	}
	code, body, _ := get(t, srv.URL+"/debug/diagnosis?server=db1")
	if code != http.StatusOK || !strings.Contains(body, `"db1"`) {
		t.Errorf("known server: %d %q", code, body)
	}
	if code, _, _ := get(t, srv.URL+"/debug/diagnosis?server=warming"); code != http.StatusServiceUnavailable {
		t.Errorf("not ready: %d, want 503", code)
	}
	if code, _, _ := get(t, srv.URL+"/debug/diagnosis?server=nope"); code != http.StatusNotFound {
		t.Errorf("unknown server: %d, want 404", code)
	}
}

func TestMuxWithoutSources(t *testing.T) {
	srv := httptest.NewServer(NewMux(MuxConfig{}))
	defer srv.Close()
	if code, _, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz without sources: %d", code)
	}
	for _, path := range []string{"/metrics", "/debug/decisions", "/debug/diagnosis?server=x"} {
		if code, _, _ := get(t, srv.URL+path); code != http.StatusNotFound {
			t.Errorf("%s without a source: %d, want 404", path, code)
		}
	}
}

func TestServeBindsAndServes(t *testing.T) {
	rec := NewRecorder(4)
	srv, addr, err := Serve("127.0.0.1:0", MuxConfig{Log: rec.Events(), Registry: rec.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _, _ := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK {
		t.Errorf("healthz via Serve = %d", code)
	}
}
