// Schemadrop replays the §5.3 index drop through the catalog and
// planner: the BestSeller query is *compiled* against a schema, so
// dropping the O_DATE index changes its execution plan — and its page
// pattern, read-ahead behaviour and miss-ratio curve — exactly the way
// it does in a real engine, with no hand-authored access patterns.
//
//	go run ./examples/schemadrop
package main

import (
	"fmt"

	"outlierlb/internal/bufferpool"
	"outlierlb/internal/catalog"
	"outlierlb/internal/engine"
	"outlierlb/internal/metrics"
	"outlierlb/internal/mrc"
	"outlierlb/internal/planner"
	"outlierlb/internal/server"
	"outlierlb/internal/sim"
	"outlierlb/internal/storage"
)

func main() {
	rng := sim.NewRNG(42)

	// The TPC-W order_line table with the O_DATE index (clustered on
	// date, the BestSeller query's access path).
	schema := catalog.NewSchema(0)
	must1(schema.AddTable("order_line", 3_000_000, 80))
	must1(schema.AddIndex("O_DATE", "order_line", 16, true))

	bestSeller := planner.Query{
		Table: "order_line", Kind: planner.RangeScan,
		Selectivity: 0.003, // the last 3,333 orders, as in TPC-W
	}

	srv := server.MustNew(server.Config{
		Name: "db1", Cores: 4, MemoryPages: 16384,
		Disk: storage.Params{Seek: 0.004, PerPage: 0.0001},
	})
	eng := engine.MustNew(engine.Config{
		Name: "mysql-1",
		Pool: bufferpool.Config{Capacity: 8192, ReadAheadRun: 4, ReadAheadPages: 32},
	}, srv)
	id := metrics.ClassID{App: "tpcw", Class: "BestSeller"}

	register := func(label string) {
		plan, err := planner.Compile(bestSeller, schema, rng)
		must(err)
		fmt.Printf("%s plan: %s — %d pages/query, %.1f ms CPU\n",
			label, plan.Access, plan.PagesPerQuery, 1000*plan.CPUPerQuery)
		must(eng.Register(engine.ClassSpec{
			ID: id, CPUPerQuery: plan.CPUPerQuery,
			PagesPerQuery: plan.PagesPerQuery, Pattern: plan.Pattern,
		}))
	}

	run := func(n int, from float64) (avgLatency float64) {
		now := from
		total := 0.0
		for i := 0; i < n; i++ {
			done, err := eng.Execute(now, id)
			must(err)
			total += done - now
			now = done + 0.2
		}
		return total / float64(n)
	}

	register("indexed")
	warm := run(400, 0)
	fmt.Printf("indexed avg latency: %.1f ms\n\n", 1000*warm)

	curve := mrc.Compute(eng.Window(id))
	p := curve.ParamsFor(8192, mrc.DefaultThreshold)
	fmt.Printf("indexed MRC: total %d pages, acceptable %d\n\n", p.TotalMemory, p.AcceptableMemory)

	fmt.Println("DROP INDEX O_DATE;")
	must(schema.DropIndex("O_DATE"))
	register("unindexed")
	broken := run(400, 1e6)
	fmt.Printf("unindexed avg latency: %.1f ms (%.0fx)\n", 1000*broken, broken/warm)

	snap := eng.Snapshot(1)
	fmt.Printf("read-ahead requests now flowing: %v\n", snap[id].Get(metrics.ReadAhead) > 0)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func must1[T any](v T, err error) T {
	must(err)
	return v
}
