// Quickstart walks the library's layers on a toy cluster: build a
// server, run a database engine on it, drive two query classes, collect
// per-class statistics, compute a miss-ratio curve, detect an outlier
// context, and apply a buffer-pool quota.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"outlierlb/internal/bufferpool"
	"outlierlb/internal/core"
	"outlierlb/internal/engine"
	"outlierlb/internal/metrics"
	"outlierlb/internal/mrc"
	"outlierlb/internal/server"
	"outlierlb/internal/sim"
	"outlierlb/internal/storage"
	"outlierlb/internal/trace"
)

func main() {
	// A 4-core server with a disk, hosting one database engine with a
	// 2000-page buffer pool and InnoDB-style read-ahead.
	srv := server.MustNew(server.Config{
		Name: "db1", Cores: 4, MemoryPages: 4000,
		Disk: storage.Params{Seek: 0.004, PerPage: 0.0001},
	})
	eng := engine.MustNew(engine.Config{
		Name: "mysql-1",
		Pool: bufferpool.Config{Capacity: 2000, ReadAheadRun: 4, ReadAheadPages: 32},
	}, srv)

	// Two query classes: a cached point lookup and a scan whose working
	// set overflows the pool.
	rng := sim.NewRNG(42)
	lookup := metrics.ClassID{App: "shop", Class: "Lookup"}
	scan := metrics.ClassID{App: "shop", Class: "Report"}
	must(eng.Register(engine.ClassSpec{
		ID: lookup, CPUPerQuery: 0.002, PagesPerQuery: 4,
		Pattern: trace.NewZipfSet(rng.Fork(), 0, 600, 1.4),
	}))
	must(eng.Register(engine.ClassSpec{
		ID: scan, CPUPerQuery: 0.010, PagesPerQuery: 200,
		Pattern: &trace.SequentialScan{Base: 100000, Span: 800},
	}))

	// Interleave executions in virtual time and snapshot per-class
	// metrics for a measurement interval.
	now := 0.0
	for i := 0; i < 400; i++ {
		done, err := eng.Execute(now, lookup)
		must(err)
		if i%10 == 0 {
			if _, err := eng.Execute(now, scan); err != nil {
				must(err)
			}
		}
		now = done + 0.05
	}
	interval := now
	snap := eng.Snapshot(interval)
	fmt.Println("per-class metrics over one measurement interval:")
	for id, v := range snap {
		fmt.Printf("  %-12s latency=%.3fs throughput=%.1f/s accesses=%.0f/s misses=%.0f/s read-ahead=%.0f/s\n",
			id.Class, v.Get(metrics.Latency), v.Get(metrics.Throughput),
			v.Get(metrics.PageAccesses), v.Get(metrics.BufferMisses), v.Get(metrics.ReadAhead))
	}

	// Miss-ratio curve of the scan class from its recent page accesses,
	// capped at the pool the class actually lives in.
	curve := mrc.Compute(eng.Window(scan))
	params := curve.ParamsFor(eng.Pool().Capacity(), mrc.DefaultThreshold)
	fmt.Printf("\nReport MRC: total memory %d pages, acceptable %d pages (miss ratio %.3f)\n",
		params.TotalMemory, params.AcceptableMemory, params.AcceptableMissRatio)

	// Outlier detection: compare the interval against a synthetic stable
	// state in which the scan was lighter.
	stable := map[metrics.ClassID]metrics.Vector{}
	for id, v := range snap {
		s := v
		if id == scan {
			s.Set(metrics.BufferMisses, v.Get(metrics.BufferMisses)/20)
			s.Set(metrics.PageAccesses, v.Get(metrics.PageAccesses)/10)
		}
		stable[id] = s
	}
	// IQR detection needs a population; pad with quiet classes.
	for i := 0; i < 4; i++ {
		id := metrics.ClassID{App: "shop", Class: fmt.Sprintf("quiet%d", i)}
		var v metrics.Vector
		v.Set(metrics.PageAccesses, 10)
		v.Set(metrics.Throughput, 5)
		stable[id] = v
		snap[id] = v
	}
	reports := core.Detect(snap, stable, core.DefaultFences())
	for _, r := range core.Outliers(reports) {
		fmt.Printf("outlier context: %s (%s), memory counters affected: %v\n",
			r.ID.Class, r.Max(), r.MemoryOutlier())
	}

	// The selective-retuning action: contain the scan with the smallest
	// quota that still meets its acceptable miss ratio.
	quota := params.AcceptableMemory
	must(eng.Pool().SetQuota(scan.String(), quota))
	fmt.Printf("\nenforced quota: %s limited to %d pages, shared pool keeps %d\n",
		scan.Class, quota, eng.Pool().SharedCapacity())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
