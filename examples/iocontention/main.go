// Iocontention reproduces the paper's §5.5 scenario: two RUBiS instances
// run in two Xen domains on one physical server. Each domain has its own
// buffer pool and its own data — there is no CPU saturation and no
// memory interference — yet both collapse, because every domain's disk
// I/O funnels through the shared driver domain (dom-0). The dom-0
// statistics identify one query class (SearchItemsByRegion) as the
// overwhelming I/O contributor; moving it to another physical machine
// restores the baseline.
//
//	go run ./examples/iocontention
package main

import (
	"fmt"

	"outlierlb/internal/experiments"
)

func main() {
	fmt.Println("two RUBiS instances in two Xen domains on one physical server")
	fmt.Println()
	r := experiments.Table3(7)
	fmt.Printf("%-10s %-26s %12s %8s\n", "domain-1", "domain-2", "dom-1 lat(s)", "WIPS")
	for _, row := range r.Rows {
		fmt.Printf("%-10s %-26s %12.3f %8.2f\n", row.Domain1, row.Domain2, row.Latency, row.WIPS)
	}
	fmt.Println()
	fmt.Println("diagnosis from the dom-0 logs during contention:")
	fmt.Printf("  CPU utilization: %.0f%% — not a CPU problem\n", 100*r.CPUUtilization)
	fmt.Printf("  top I/O class:   %s, %.0f%% of its application's page I/O (paper: 87%%)\n",
		r.TopIOClass, 100*r.TopIOShare)
	fmt.Println("  remedy:          reschedule that class onto a different physical machine")
	fmt.Println()
	fmt.Println("paper's measurements: 1.5s/97 WIPS → 4.8s/30 WIPS → 1.5s/95 WIPS")
}
