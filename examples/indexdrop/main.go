// Indexdrop reproduces the paper's §5.3 scenario as a library client,
// wiring every tier by hand: a cluster manager with two servers, a TPC-W
// application under a closed-loop client emulator, and the selective
// retuning controller. Halfway through the run the O_DATE index is
// dropped, degrading the BestSeller plan to an order-line scan; the
// controller detects the outlier context, confirms it by MRC
// recomputation, and contains it.
//
//	go run ./examples/indexdrop
package main

import (
	"fmt"

	"outlierlb/internal/bufferpool"
	"outlierlb/internal/cluster"
	"outlierlb/internal/core"
	"outlierlb/internal/server"
	"outlierlb/internal/sim"
	"outlierlb/internal/sla"
	"outlierlb/internal/storage"
	"outlierlb/internal/workload"
	"outlierlb/internal/workload/tpcw"
)

func main() {
	s := sim.NewEngine(7)

	// The cluster: two 4-core servers, engines get the paper's 8192-page
	// (128 MB) buffer pool with linear read-ahead.
	mgr := cluster.NewManager()
	mgr.PoolConfig = bufferpool.Config{Capacity: 8192, ReadAheadRun: 4, ReadAheadPages: 32}
	for _, name := range []string{"db1", "db2"} {
		mgr.AddServer(server.MustNew(server.Config{
			Name: name, Cores: 4, MemoryPages: 16384,
			Disk: storage.Params{Seek: 0.004, PerPage: 0.0001},
		}))
	}
	ctl, err := core.NewController(s, mgr, core.Config{Interval: 10, SettleIntervals: 3})
	must(err)

	// TPC-W with the shopping mix and one replica. The paper's SLA is a
	// 1-second bound against a ~0.6 s healthy baseline; this testbed's
	// healthy baseline is ~0.02 s, so the SLA scales accordingly.
	rng := s.RNG().Fork()
	app := tpcw.New(rng, tpcw.Options{})
	app.SLA = sla.SLA{MaxAvgLatency: 0.6}
	sched, err := cluster.NewScheduler(app)
	must(err)
	must(mgr.Register(sched))
	_, err = mgr.ProvisionOnFreeServer(app.Name)
	must(err)

	em, err := workload.NewEmulator(s, sched, workload.Config{
		Mix: tpcw.Mix(), ThinkTime: 2.0, ThinkNoise: 0.3,
		Load: workload.Constant(60),
	})
	must(err)
	em.Start()
	s.Schedule(120, ctl.Start) // measure after cache warmup

	fmt.Println("phase 1: stable state with the O_DATE index in place")
	s.RunUntil(400)
	printTail(sched, 3)

	fmt.Println("\nphase 2: DROP INDEX O_DATE — BestSeller degrades to a scan")
	dropped := tpcw.New(rng, tpcw.Options{DropODateIndex: true})
	for _, spec := range dropped.Classes {
		if spec.ID.Class == tpcw.BestSellerClass {
			must(sched.UpdateClass(spec))
		}
	}
	s.RunUntil(900)
	em.Stop()
	printTail(sched, 6)

	fmt.Println("\ncontroller actions:")
	for _, a := range ctl.Actions() {
		fmt.Println(" ", a)
	}
	if sig, ok := ctl.Signatures().Lookup(app.Name, "db1"); ok {
		if p, has := sig.MRC[tpcw.ClassID(tpcw.BestSellerClass)]; has {
			fmt.Printf("\nBestSeller MRC after diagnosis: total %d pages, acceptable %d pages\n",
				p.TotalMemory, p.AcceptableMemory)
		}
	}

	fmt.Println("\noperator diagnosis report (read-only view):")
	for _, rep := range ctl.DiagnoseScheduler(s.Now().Seconds(), sched, 10) {
		fmt.Print(rep)
	}
}

func printTail(sched *cluster.Scheduler, n int) {
	hist := sched.Tracker().History()
	if len(hist) < n {
		n = len(hist)
	}
	for _, iv := range hist[len(hist)-n:] {
		status := "SLA met"
		if !iv.Met {
			status = "SLA VIOLATED"
		}
		fmt.Printf("  [%4.0f-%4.0fs] avg latency %.3fs, %.1f interactions/s — %s\n",
			iv.Start, iv.End, iv.AvgLatency, iv.Throughput, status)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
