// Consolidation reproduces the paper's §5.4 scenario: TPC-W runs alone
// inside one database engine and meets its SLA; a RUBiS instance is then
// consolidated into the same engine, sharing the 8192-page buffer pool,
// and TPC-W collapses. The controller pinpoints the newly-added
// SearchItemsByRegion query class — whose acceptable memory (~7900
// pages) cannot be co-located with TPC-W's BestSeller (~6982 pages) —
// and reschedules just that class onto a different replica.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"

	"outlierlb/internal/experiments"
)

func main() {
	fmt.Println("consolidating RUBiS into TPC-W's database engine (shared 8192-page pool)")
	fmt.Println()
	r := experiments.Table2(7)
	fmt.Printf("%-38s %12s %8s\n", "configuration", "TPC-W lat(s)", "WIPS")
	for _, row := range r.Rows {
		fmt.Printf("%-38s %12.3f %8.2f\n", row.Placement, row.Latency, row.WIPS)
	}
	fmt.Println()
	fmt.Println("what the controller did:")
	for _, a := range r.Actions {
		fmt.Println(" ", a)
	}
	fmt.Println()
	fmt.Printf("the class it moved: %s — exactly the class the paper's analysis moves.\n", r.MovedClass)
	fmt.Println("paper's measurements: 0.54s/6.57 WIPS → 5.42s/4.29 WIPS → 1.27s/6.44 WIPS")
}
