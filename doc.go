// Package outlierlb reproduces "Outlier Detection for Fine-grained Load
// Balancing in Database Clusters" (Chen, Soundararajan, Mihailescu, Amza
// — ICDE 2007) as a Go library.
//
// The paper's contribution — per-query-class statistics collection,
// stable-state signatures, IQR outlier-context detection, miss-ratio-
// curve-based memory-interference diagnosis, and selective retuning
// (buffer-pool quotas and fine-grained query-class load balancing across
// database replicas) — lives in internal/core. Every substrate it needs
// is implemented in this module: a deterministic discrete-event
// simulator, an LRU buffer pool with partitions and read-ahead, Mattson's
// stack algorithm, a disk and CPU model with Xen-style dom-0 I/O
// contention, a replicated cluster with read-one-write-all schedulers,
// and TPC-W / RUBiS workload models.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for paper-versus-measured
// values and README.md for a tour.
package outlierlb
