module outlierlb

go 1.22
