package main

// Suite mode: run the curated performance suite from internal/benchsuite
// and emit a machine-readable BENCH_*.json document, optionally comparing
// it against a committed baseline. This is the producer behind the
// repository's BENCH_0.json seed baseline and the ci.sh regression gate.

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"outlierlb/internal/benchsuite"
)

// noisyHostRelIQR is the median relative IQR above which a run is judged
// too noisy to gate on: a throttled or busy host can shift medians by far
// more than any real code change, so comparing would only flap.
const noisyHostRelIQR = 0.20

// runSuite executes the benchmark suite and writes/compares results.
// Exit codes: 0 ok (including a noisy-host skip), 1 regression or error.
func runSuite(short bool, out, baseline string, tol float64, force bool, seed uint64) {
	opt := benchsuite.DefaultOptions()
	if short {
		opt = benchsuite.ShortOptions()
	}
	opt.Seed = seed

	doc, err := benchsuite.Run(benchsuite.Suite(), opt, func(s benchsuite.Scenario) {
		fmt.Fprintf(os.Stderr, "benchrunner: running %-24s (%s)\n", s.Name, s.Kind)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	doc.Commit = headCommit()

	for _, s := range doc.Scenarios {
		if s.Kind == "macro" {
			fmt.Printf("%-24s %12.0f ns/run  p50=%.3fs p95=%.3fs p99=%.3fs  %.0f qps\n",
				s.Name, s.NsPerOp.Median, s.LatencyP50, s.LatencyP95, s.LatencyP99, s.Throughput)
		} else {
			fmt.Printf("%-24s %12.1f ns/op  %8.2f allocs/op  %10.1f B/op\n",
				s.Name, s.NsPerOp.Median, s.AllocsPerOp, s.BytesPerOp)
		}
	}

	if out != "" {
		if err := benchsuite.WriteFile(out, doc, force); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: wrote %s\n", out)
	}

	if baseline == "" {
		return
	}
	old, err := benchsuite.Load(baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	if rel := doc.MedianRelIQR(); rel > noisyHostRelIQR {
		fmt.Fprintf(os.Stderr,
			"benchrunner: NOTICE: host too noisy to gate (median relative IQR %.0f%% > %.0f%%); skipping comparison against %s\n",
			rel*100, noisyHostRelIQR*100, baseline)
		return
	}
	deltas := benchsuite.Compare(old, doc, tol)
	for _, d := range deltas {
		switch d.Verdict {
		case benchsuite.VerdictAdded, benchsuite.VerdictRemoved:
			fmt.Printf("%-24s %s\n", d.Name, d.Verdict)
		default:
			fmt.Printf("%-24s %-9s %+6.1f%% (tolerance ±%.0f%%)\n",
				d.Name, d.Verdict, d.Change*100, d.Tolerance*100)
		}
	}
	if regs := benchsuite.Regressions(deltas); len(regs) > 0 {
		names := make([]string, len(regs))
		for i, d := range regs {
			names[i] = fmt.Sprintf("%s (%+.1f%%)", d.Name, d.Change*100)
		}
		fmt.Fprintf(os.Stderr, "benchrunner: FAIL: %d regression(s) vs %s: %s\n",
			len(regs), baseline, strings.Join(names, ", "))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrunner: no regressions vs %s\n", baseline)
}

// headCommit asks git for HEAD, best-effort: a missing git binary or a
// non-repo checkout just leaves the commit field empty.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
