package main

// The resilience suite: every chaos, adversarial and pathological-
// policy scenario reduced to its scorecard across a pinned seed set,
// printed as a table, optionally persisted as a versioned strict-schema
// RESIL_*.json document (atomic write, no silent overwrite — the same
// discipline as BENCH_*.json), and optionally asserted for CI:
//
//	benchrunner -resil                                   # full sweep, table
//	benchrunner -resil -out RESIL_0.json                 # persist scorecards
//	benchrunner -resil -resil.scenarios clock-skew -assert  # CI gate
import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"outlierlb/internal/experiments"
	"outlierlb/internal/resil"
)

// resilScenario is one entry of the resilience sweep. wantMitigate
// marks scenarios where the control plane must visibly act (retry,
// breaker trip, retuning action); the adversarial metric-integrity
// scenarios leave it false because their correct response is to absorb
// the lying input without acting at all. wantRevert marks the
// pathological-policy runs, where a scorecard without a watchdog
// rollback means the guard slept through the fault.
type resilScenario struct {
	name         string
	wantMitigate bool
	wantRevert   bool
	run          func(seed uint64) (resil.Scorecard, error)
}

func resilScenarios() []resilScenario {
	chaos := func(fn func(uint64) (*experiments.ChaosResult, error)) func(uint64) (resil.Scorecard, error) {
		return func(seed uint64) (resil.Scorecard, error) {
			r, err := fn(seed)
			if err != nil {
				return resil.Scorecard{}, err
			}
			return r.Scorecard, nil
		}
	}
	defs := []resilScenario{
		{name: "gray-failure", wantMitigate: true, run: chaos(experiments.ChaosGrayFailure)},
		{name: "flapping", wantMitigate: true, run: chaos(experiments.ChaosFlapping)},
		{name: "metric-blackout", wantMitigate: true, run: chaos(experiments.ChaosMetricBlackout)},
		{name: "byzantine-metrics", run: chaos(experiments.ChaosByzantineMetrics)},
		{name: "snapshot-corruption", run: chaos(experiments.ChaosSnapshotCorruption)},
		{name: "clock-skew", run: chaos(experiments.ChaosClockSkew)},
		// The control-channel scenarios attack the message channel itself.
		// Partitions and loss must be visibly acted on (epoch fences,
		// retransmissions); delayed snapshots are an absorb-only scenario —
		// the staleness guard rejects the old reports and nothing else
		// should happen.
		{name: "ctrl-partition", wantMitigate: true, run: chaos(experiments.ChaosCtrlPartition)},
		{name: "ctrl-asym-partition", wantMitigate: true, run: chaos(experiments.ChaosCtrlAsymPartition)},
		{name: "ctrl-lossy", wantMitigate: true, run: chaos(experiments.ChaosCtrlLossy)},
		{name: "ctrl-delayed-snapshots", run: chaos(experiments.ChaosCtrlDelayedSnapshots)},
	}
	// The temporal scenarios stress the control plane with load shape
	// rather than injected faults: the surge window is the scorecard's
	// fault window, and every one of them demands visible mitigation
	// (provisioning, brownout shedding, or coarse isolation).
	// trace-replay-identity additionally fails outright if the replayed
	// run diverges from the recorded one, so replay fidelity is gated
	// here too.
	temporal := func(fn func(uint64) (*experiments.TemporalResult, error)) func(uint64) (resil.Scorecard, error) {
		return func(seed uint64) (resil.Scorecard, error) {
			r, err := fn(seed)
			if err != nil {
				return resil.Scorecard{}, err
			}
			return r.Scorecard, nil
		}
	}
	defs = append(defs,
		resilScenario{name: "flash-crowd", wantMitigate: true, run: temporal(experiments.FlashCrowd)},
		resilScenario{name: "diurnal-shift", wantMitigate: true, run: temporal(experiments.DiurnalShift)},
		resilScenario{name: "olap-antagonist", wantMitigate: true, run: temporal(experiments.OLAPAntagonist)},
		resilScenario{name: "trace-replay-identity", wantMitigate: true, run: temporal(experiments.TraceReplayIdentity)},
	)
	for _, tpl := range experiments.GuardTemplates() {
		tpl := tpl
		defs = append(defs, resilScenario{
			name:         "guard-" + tpl,
			wantMitigate: true,
			wantRevert:   true,
			run: func(seed uint64) (resil.Scorecard, error) {
				r, err := experiments.GuardScenario(seed, tpl)
				if err != nil {
					return resil.Scorecard{}, err
				}
				return r.Scorecard, nil
			},
		})
	}
	return defs
}

// parseSeeds turns "1,2,3" into seeds; empty means the pinned default.
func parseSeeds(s string) ([]uint64, error) {
	if s == "" {
		return []uint64{1, 2, 3}, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// runResil executes the resilience sweep. filter selects scenarios by
// exact name ("" or "all" runs everything); assertBudget > 0 turns the
// run into a gate: every scorecard must be detected, mitigated and
// recovered within the budget (virtual seconds), and the guard
// scenarios must additionally show a watchdog rollback.
func runResil(filter, seedList, out string, force bool, assert bool, assertBudget float64) {
	seeds, err := parseSeeds(seedList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner: -resil.seeds:", err)
		os.Exit(2)
	}
	all := resilScenarios()
	var picked []resilScenario
	if filter == "" || filter == "all" {
		picked = all
	} else {
		want := map[string]bool{}
		for _, n := range strings.Split(filter, ",") {
			want[strings.TrimSpace(n)] = true
		}
		for _, sc := range all {
			if want[sc.name] {
				picked = append(picked, sc)
				delete(want, sc.name)
			}
		}
		if len(want) > 0 {
			var names []string
			for _, sc := range all {
				names = append(names, sc.name)
			}
			var unknown []string
			for n := range want {
				unknown = append(unknown, n)
			}
			fmt.Fprintf(os.Stderr, "benchrunner: unknown -resil.scenarios %v (want %s)\n",
				unknown, strings.Join(names, "|"))
			os.Exit(2)
		}
	}

	doc := resil.NewDoc()
	fmt.Printf("%-34s %5s %8s %8s %8s %8s %7s %7s %7s\n",
		"scenario", "seed", "detect", "mitigate", "recover", "revert", "t_det", "t_mit", "t_rec")
	failures := 0
	for _, sc := range picked {
		for _, seed := range seeds {
			card, err := sc.run(seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %s seed=%d: %v\n", sc.name, seed, err)
				os.Exit(1)
			}
			doc.Scorecards = append(doc.Scorecards, card)
			fmt.Printf("%-34s %5d %8v %8v %8v %8v %7.0f %7.0f %7.0f\n",
				sc.name, seed, card.Detected, card.Mitigated, card.Recovered, card.Reverted,
				card.TimeToDetect, card.TimeToMitigate, card.TimeToRecover)
			if !assert {
				continue
			}
			verdict := func(cond bool, msg string) {
				if !cond {
					failures++
					fmt.Fprintf(os.Stderr, "benchrunner: ASSERT %s seed=%d: %s\n", sc.name, seed, msg)
				}
			}
			verdict(card.Detected, "fault not detected")
			if sc.wantMitigate {
				verdict(card.Mitigated, "fault not mitigated")
			}
			verdict(card.Recovered && card.TimeToRecover >= 0 && card.TimeToRecover <= assertBudget,
				fmt.Sprintf("not recovered within %.0fs (recovered=%v t_rec=%.0fs)",
					assertBudget, card.Recovered, card.TimeToRecover))
			if sc.wantRevert {
				verdict(card.Reverted, "watchdog never rolled back the pathological action")
			}
		}
	}

	if out != "" {
		if err := resil.WriteFile(out, doc, force); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d scorecards to %s\n", len(doc.Scorecards), out)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchrunner: %d scorecard assertion(s) failed\n", failures)
		os.Exit(1)
	}
	if assert {
		fmt.Printf("all %d scorecards pass: detected, mitigated, recovered within %.0fs\n",
			len(doc.Scorecards), assertBudget)
	}
}
