// Benchrunner regenerates every table and figure of the paper's
// evaluation section and prints them in the same shape the paper reports:
//
//	benchrunner -exp all          # everything (several seconds)
//	benchrunner -exp table2       # one experiment
//	benchrunner -exp fig5 -csv    # machine-readable series
//
// Experiments: fig3, fig4, fig5, fig6, table1, table2, table3, ablations,
// chaos, overload, flash-crowd, diurnal-shift, olap-antagonist,
// trace-replay.
//
// Experiment runs also accept -wl.record FILE / -wl.replay FILE to
// capture the offered load as a workload-trace-v2 or feed a recorded
// trace back in (see WORKLOADS.md).
//
// It also hosts the performance suite (see internal/benchsuite and
// PERFORMANCE.md):
//
//	benchrunner -suite -out BENCH_0.json          # full run, write baseline
//	benchrunner -suite.short -baseline BENCH_0.json  # CI regression gate
//
// And the resilience scorecard suite (see internal/resil):
//
//	benchrunner -resil -out RESIL_0.json             # chaos+adversarial+guard sweep
//	benchrunner -resil -resil.scenarios clock-skew -assert  # CI resilience gate
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"outlierlb/internal/experiments"
	"outlierlb/internal/obscli"
	"outlierlb/internal/plot"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment to run: fig3|fig4|fig5|fig6|table1|table2|table3|ablations|chaos|overload|"+
			"flash-crowd|diurnal-shift|olap-antagonist|trace-replay|all")
	seed := flag.Uint64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "emit figures as CSV series instead of aligned text")
	obsAddr := flag.String("obs.addr", "", "serve /metrics and /debug endpoints on this address (e.g. :9090)")
	verbose := flag.Bool("v", false, "print each controller decision to stderr as it happens")
	statWorkers := flag.Int("stat.workers", 0,
		"concurrent statistics executors per engine (0 = synchronous, deterministic)")
	suite := flag.Bool("suite", false, "run the performance suite (full settings) instead of an experiment")
	suiteShort := flag.Bool("suite.short", false, "run the performance suite with reduced CI settings")
	resilMode := flag.Bool("resil", false,
		"run the resilience scorecard suite (chaos + adversarial + guard scenarios) instead of an experiment")
	resilScen := flag.String("resil.scenarios", "all",
		"resil mode: comma-separated scenario names to run (all = every scenario)")
	resilSeeds := flag.String("resil.seeds", "1,2,3", "resil mode: comma-separated seeds")
	resilAssert := flag.Bool("assert", false,
		"resil mode: fail unless every scorecard is detected, mitigated and recovered within -assert.budget")
	resilBudget := flag.Float64("assert.budget", 300,
		"resil mode: maximum acceptable time-to-recover in virtual seconds for -assert")
	out := flag.String("out", "", "suite mode: write results to this BENCH_*.json path")
	force := flag.Bool("force", false, "suite mode: allow -out to overwrite an existing file")
	baseline := flag.String("baseline", "", "suite mode: compare against this BENCH_*.json and fail on regressions")
	tol := flag.Float64("tol", 0.30, "suite mode: fractional regression tolerance for -baseline")
	traceSample := flag.Float64("trace.sample", 0,
		"head-sample this fraction of queries into span traces (0 disables, 1.0 traces everything)")
	runOut := flag.String("run.out", "",
		"flush a RUN_*.json flight recording (metric time series + sampled traces) to FILE on completion")
	pprof := flag.Bool("obs.pprof", false, "mount net/http/pprof under /debug/pprof/ on -obs.addr")
	eventCore := obscli.EventCoreFlag()
	ctrlFlags := obscli.RegisterCtrlFlags()
	wlFlags := obscli.RegisterWlFlags()
	flag.Parse()

	if *suite || *suiteShort || *resilMode {
		// These modes never start an obs session, so those flags would be
		// silently ignored; refuse them instead of surprising the user.
		if *traceSample != 0 || *runOut != "" || *pprof || *obsAddr != "" {
			fmt.Fprintln(os.Stderr,
				"benchrunner: -trace.sample, -run.out, -obs.pprof and -obs.addr apply only to experiment runs, not -suite/-suite.short/-resil")
			os.Exit(2)
		}
		// The suites pin their own configuration so baselines stay
		// comparable; refuse the toggle even at its default value rather
		// than let an explicit setting appear to take effect.
		if obscli.FlagWasSet("sim.eventcore") {
			fmt.Fprintln(os.Stderr,
				"benchrunner: -sim.eventcore applies only to experiment runs, not -suite/-suite.short/-resil")
			os.Exit(2)
		}
		// Same discipline for the control channel: the performance
		// baselines and the resilience scorecards both pin a perfect
		// channel (the ctrl-* scenarios inject their own degradation), so
		// a -ctrl.* flag here would be silently ignored.
		if name, set := ctrlFlags.AnySet(); set {
			fmt.Fprintf(os.Stderr,
				"benchrunner: %s applies only to experiment runs, not -suite/-suite.short/-resil\n", name)
			os.Exit(2)
		}
		// The suites pin their own offered load; a trace flag here would
		// either be silently ignored or quietly reshape every baseline.
		if name, set := wlFlags.AnySet(); set {
			fmt.Fprintf(os.Stderr,
				"benchrunner: %s applies only to experiment runs, not -suite/-suite.short/-resil\n", name)
			os.Exit(2)
		}
		if *resilMode {
			if *suite || *suiteShort {
				fmt.Fprintln(os.Stderr, "benchrunner: -resil and -suite are mutually exclusive")
				os.Exit(2)
			}
			runResil(*resilScen, *resilSeeds, *out, *force, *resilAssert, *resilBudget)
			return
		}
		runSuite(*suiteShort, *out, *baseline, *tol, *force, *seed)
		return
	}

	experiments.SetStatWorkers(*statWorkers)
	experiments.SetEventCore(*eventCore)
	ctrlFlags.Apply()
	if err := wlFlags.Apply(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(2)
	}

	session, err := obscli.Start(obscli.Options{
		Addr:        *obsAddr,
		Verbose:     *verbose,
		TraceSample: *traceSample,
		RunOut:      *runOut,
		PProf:       *pprof,
		Tool:        "benchrunner",
		Scenario:    *exp,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer func() {
		if err := wlFlags.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		session.Finish()
		session.WaitForInterrupt()
	}()

	runners := map[string]func(uint64, bool){
		"fig3":            runFig3,
		"fig4":            runFig4,
		"fig5":            runFig5,
		"fig6":            runFig6,
		"table1":          runTable1,
		"table2":          runTable2,
		"table3":          runTable3,
		"ablations":       runAblations,
		"chaos":           runChaosSuite,
		"overload":        runOverload,
		"flash-crowd":     runTemporal("flash-crowd", experiments.FlashCrowd),
		"diurnal-shift":   runTemporal("diurnal-shift", experiments.DiurnalShift),
		"olap-antagonist": runTemporal("olap-antagonist", experiments.OLAPAntagonist),
		"trace-replay":    runTemporal("trace-replay-identity", experiments.TraceReplayIdentity),
	}
	names := []string{"fig3", "fig4", "fig5", "fig6", "table1", "table2", "table3", "ablations", "chaos", "overload",
		"flash-crowd", "diurnal-shift", "olap-antagonist", "trace-replay"}

	want := strings.ToLower(*exp)
	if want == "all" {
		for _, n := range names {
			runners[n](*seed, *csv)
			fmt.Println()
		}
		return
	}
	run, ok := runners[want]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q (want %s or all)\n",
			want, strings.Join(names, "|"))
		os.Exit(2)
	}
	run(*seed, *csv)
}

func runFig3(seed uint64, csv bool) {
	r := experiments.Figure3(seed)
	fmt.Println("=== Figure 3: alleviation of CPU contention (§5.2) ===")
	if csv {
		fmt.Println("time,clients,machines,latency")
		for i := range r.Times {
			fmt.Printf("%.0f,%d,%d,%.4f\n", r.Times[i], r.Clients[i], r.Machines[i], r.Latency[i])
		}
		return
	}
	clients := make([]float64, len(r.Times))
	machines := make([]float64, len(r.Times))
	latency := make([]float64, len(r.Times))
	for i := range r.Times {
		clients[i] = float64(r.Clients[i])
		machines[i] = float64(r.Machines[i])
		latency[i] = r.Latency[i]
	}
	fmt.Println("(a) client load:")
	fmt.Print(plot.TimeSeries(r.Times, []plot.Series{{Name: "clients", Values: clients}}, 72, 8))
	fmt.Println("(b) machine allocation:")
	fmt.Print(plot.TimeSeries(r.Times, []plot.Series{{Name: "machines", Values: machines}}, 72, 5))
	fmt.Printf("(c) average query latency (SLA %.1fs):\n", r.SLA)
	fmt.Print(plot.TimeSeries(r.Times, []plot.Series{{Name: "latency(s)", Values: latency}}, 72, 10))
	fmt.Printf("peak machines: %d, final latency: %.3fs (SLA %.1fs)\n",
		r.MaxMachines(), r.FinalLatency(), r.SLA)
	for _, a := range r.Actions {
		fmt.Println("  action:", a)
	}
}

func runFig4(seed uint64, csv bool) {
	r := experiments.Figure4(seed)
	fmt.Println("=== Figure 4: dropping the O_DATE index (§5.3) ===")
	fmt.Println("ratios of measured values to stable-state averages per query class:")
	if csv {
		fmt.Println("id,class,latency,throughput,misses,readahead")
		for i, c := range r.Classes {
			fmt.Printf("%d,%s,%.3f,%.3f,%.3f,%.3f\n", i+1, c,
				r.LatencyRatio[i], r.ThroughputRatio[i], r.MissesRatio[i], r.ReadAheadRatio[i])
		}
	} else {
		fmt.Printf("%3s %-22s %9s %9s %9s %12s\n", "id", "class", "latency", "tput", "misses", "read-ahead")
		for i, c := range r.Classes {
			fmt.Printf("%3d %-22s %9.2f %9.2f %9.2f %12.2f\n", i+1, c,
				r.LatencyRatio[i], r.ThroughputRatio[i], r.MissesRatio[i], r.ReadAheadRatio[i])
		}
	}
	fmt.Printf("memory-counter outliers: %v\n", r.MemoryOutliers)
	fmt.Printf("confirmed by MRC change: %v (paper: BestSeller)\n", r.Confirmed)
}

func printMRC(r *experiments.MRCResult, csv bool) {
	if csv {
		fmt.Println("memory_pages,miss_ratio")
		for i := range r.Memory {
			fmt.Printf("%d,%.4f\n", r.Memory[i], r.Miss[i])
		}
	} else {
		for i := range r.Memory {
			if i%4 != 0 {
				continue
			}
			bar := strings.Repeat("#", int(r.Miss[i]*50))
			fmt.Printf("%7d pages | %-50s %.3f\n", r.Memory[i], bar, r.Miss[i])
		}
	}
	fmt.Printf("total memory needed: %d pages (ideal miss ratio %.3f)\n",
		r.Params.TotalMemory, r.Params.IdealMissRatio)
	fmt.Printf("acceptable memory: %d pages (acceptable miss ratio %.3f)\n",
		r.Params.AcceptableMemory, r.Params.AcceptableMissRatio)
}

func runFig5(seed uint64, csv bool) {
	fmt.Println("=== Figure 5: MRC of BestSeller, normal configuration (§5.3) ===")
	printMRC(experiments.Figure5(seed), csv)
	fmt.Println("paper: acceptable memory 6982 pages")
}

func runFig6(seed uint64, csv bool) {
	fmt.Println("=== Figure 6: MRC of RUBiS SearchItemsByRegion (§5.4) ===")
	printMRC(experiments.Figure6(seed), csv)
	fmt.Println("paper: acceptable memory ≈7906 pages")
}

func runTable1(seed uint64, _ bool) {
	r := experiments.Table1(seed)
	fmt.Println("=== Table 1: hit ratio of buffer-pool managements (§5.3) ===")
	fmt.Printf("%-16s %14s %18s %18s\n", "", "Shared Buffer", "Partitioned Buffer", "Exclusive Buffer")
	fmt.Printf("%-16s %13.1f%% %17.1f%% %17.1f%%\n", "BestSeller", r.SharedBest, r.PartitionedBest, r.ExclusiveBest)
	fmt.Printf("%-16s %13.1f%% %17.1f%% %17.1f%%\n", "Non-BestSeller", r.SharedRest, r.PartitionedRest, r.ExclusiveRest)
	fmt.Printf("BestSeller quota: %d pages of %d (paper: 3695 of 8192)\n",
		r.BestQuota, experiments.PoolPages)
	fmt.Println("paper:            shared       partitioned       exclusive")
	fmt.Println("  BestSeller      95.5%             95.7%            96.1%")
	fmt.Println("  Non-BestSeller  96.2%             99.5%            99.9%")
}

func runTable2(seed uint64, _ bool) {
	r := experiments.Table2(seed)
	fmt.Println("=== Table 2: memory contention in a shared buffer pool (§5.4) ===")
	fmt.Printf("%-38s %10s %10s\n", "placement", "latency(s)", "WIPS")
	for _, row := range r.Rows {
		fmt.Printf("%-38s %10.3f %10.2f\n", row.Placement, row.Latency, row.WIPS)
	}
	fmt.Printf("diagnosed and rescheduled: %s (paper: SearchItemsByRegion)\n", r.MovedClass)
	for _, a := range r.Actions {
		fmt.Println("  action:", a)
	}
	fmt.Println("paper: 0.54s/6.57 → 5.42s/4.29 → 1.27s/6.44")
}

func runTable3(seed uint64, _ bool) {
	r := experiments.Table3(seed)
	fmt.Println("=== Table 3: I/O contention among VM domains (§5.5) ===")
	fmt.Printf("%-10s %-24s %10s %10s\n", "domain-1", "domain-2", "latency(s)", "WIPS")
	for _, row := range r.Rows {
		fmt.Printf("%-10s %-24s %10.3f %10.2f\n", row.Domain1, row.Domain2, row.Latency, row.WIPS)
	}
	fmt.Printf("diagnosis: CPU %.0f%%, top I/O class %s with %.0f%% of its application's I/O (paper: 87%%)\n",
		100*r.CPUUtilization, r.TopIOClass, 100*r.TopIOShare)
	fmt.Println("paper: 1.5s/97 → 4.8s/30 → 1.5s/95")
}

func runChaosSuite(seed uint64, csv bool) {
	fmt.Println("=== Chaos: replica health management under injected faults ===")
	scenarios := []struct {
		name string
		fn   func(uint64) (*experiments.ChaosResult, error)
	}{
		{"gray-failure", experiments.ChaosGrayFailure},
		{"flapping", experiments.ChaosFlapping},
		{"metric-blackout", experiments.ChaosMetricBlackout},
	}
	if csv {
		fmt.Println("scenario,healthy,fault,final,errors,trips,recoveries,retries,degraded,provisions,shrinks,target_healthy")
	} else {
		fmt.Printf("%-16s %8s %8s %8s %7s %6s %6s %8s %9s %8s %7s\n",
			"scenario", "healthy", "fault", "final", "errors", "trips", "recov", "retries", "degraded", "actions", "healthy")
	}
	for _, sc := range scenarios {
		r, err := sc.fn(seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", sc.name, err)
			os.Exit(1)
		}
		if csv {
			fmt.Printf("%s,%.4f,%.4f,%.4f,%d,%d,%d,%d,%d,%d,%d,%v\n",
				sc.name, r.HealthyLatency, r.FaultLatency, r.FinalLatency, r.ClientErrors,
				r.BreakerTrips, r.Recoveries, r.Retries, r.DegradedEvents, r.Provisions, r.Shrinks, r.TargetHealthy)
		} else {
			fmt.Printf("%-16s %7.3fs %7.3fs %7.3fs %7d %6d %6d %8d %9d %3d+%-3d %7v\n",
				sc.name, r.HealthyLatency, r.FaultLatency, r.FinalLatency, r.ClientErrors,
				r.BreakerTrips, r.Recoveries, r.Retries, r.DegradedEvents, r.Provisions, r.Shrinks, r.TargetHealthy)
		}
	}
	if !csv {
		fmt.Println("invariants: zero client errors, fault-window latency under the query deadline,")
		fmt.Println("breaker trips probed back to healthy, at most one provision/shrink pair per fault")
	}
}

func runOverload(seed uint64, csv bool) {
	fmt.Println("=== Overload: admission control and impact-ranked load shedding ===")
	r, err := experiments.Overload(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner: overload:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Println("nominal,peak,protected,final,errors,shed_interactions,resheds,readmits,shed_order")
		fmt.Printf("%.4f,%.4f,%.4f,%.4f,%d,%d,%d,%d,%s\n",
			r.NominalLatency, r.PeakLatency, r.ProtectedLatency, r.FinalLatency,
			r.ClientErrors, r.ShedInteractions, r.Resheds, r.Readmits,
			strings.Join(r.ShedOrder, "+"))
		return
	}
	fmt.Printf("latency: nominal %.3fs → peak %.3fs → protected %.3fs → final %.3fs\n",
		r.NominalLatency, r.PeakLatency, r.ProtectedLatency, r.FinalLatency)
	fmt.Printf("shed order: %v (resheds %d, readmits %d, %d interactions turned away)\n",
		r.ShedOrder, r.Resheds, r.Readmits, r.ShedInteractions)
	fmt.Printf("client errors: %d, still shed at end: %v\n", r.ClientErrors, r.FinalShedClasses)
	fmt.Println("invariants: lowest-impact classes shed first, protected class keeps its SLA,")
	fmt.Println("everything readmitted and zero rejections once load returns to nominal")
}

// runTemporal adapts one temporal-workload scenario (flash-crowd,
// diurnal-shift, olap-antagonist, trace-replay-identity) to the -exp
// runner shape. The CSV form emits one row per run for sweeps.
func runTemporal(name string, fn func(uint64) (*experiments.TemporalResult, error)) func(uint64, bool) {
	return func(seed uint64, csv bool) {
		r, err := fn(seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		sc := r.Scorecard
		if csv {
			fmt.Println("scenario,seed,baseline,surge,final,errors,offered,shed,provisions,shrinks,detected,mitigated,recovered,t_detect,t_mitigate,t_recover")
			fmt.Printf("%s,%d,%.4f,%.4f,%.4f,%d,%d,%d,%d,%d,%v,%v,%v,%.0f,%.0f,%.0f\n",
				name, seed, r.BaselineLatency, r.SurgeLatency, r.FinalLatency, r.ClientErrors,
				r.Offered, r.Shed, r.Provisions, r.Shrinks,
				sc.Detected, sc.Mitigated, sc.Recovered,
				sc.TimeToDetect, sc.TimeToMitigate, sc.TimeToRecover)
			return
		}
		fmt.Printf("=== Temporal: %s ===\n", name)
		fmt.Printf("latency: baseline %.3fs → surge %.3fs → final %.3fs\n",
			r.BaselineLatency, r.SurgeLatency, r.FinalLatency)
		fmt.Printf("offered: %d interactions (%d shed by admission), client errors %d\n",
			r.Offered, r.Shed, r.ClientErrors)
		fmt.Printf("capacity: %d provision(s), %d shrink(s); final met streak %d interval(s)\n",
			r.Provisions, r.Shrinks, r.FinalMetStreak)
		fmt.Printf("scorecard: detected=%v (%s, +%.0fs) mitigated=%v (%s, +%.0fs) recovered=%v (+%.0fs after clear)\n",
			sc.Detected, sc.DetectKind, sc.TimeToDetect, sc.Mitigated, sc.MitigateKind, sc.TimeToMitigate,
			sc.Recovered, sc.TimeToRecover)
		for _, a := range r.Actions {
			fmt.Println("  action:", a)
		}
	}
}

func runAblations(seed uint64, _ bool) {
	fmt.Println("=== Ablations (design choices) ===")
	quota, migrate := experiments.AblationQuotaVsMigrate(seed)
	fmt.Printf("quota vs migrate (index drop): quota %d server(s) at %.3fs; migrate %d server(s) at %.3fs\n",
		quota.ServersUsed, quota.FinalLatency, migrate.ServersUsed, migrate.FinalLatency)
	fine, coarse := experiments.AblationFineVsCoarse(seed)
	fmt.Printf("fine vs coarse (consolidation): fine %d server(s), recovery %.0fs; coarse %d server(s), recovery %.0fs\n",
		fine.ServersUsed, fine.RecoverySeconds, coarse.ServersUsed, coarse.RecoverySeconds)
	otk := experiments.AblationOutlierVsTopK(seed)
	fmt.Printf("outlier vs top-k: detector examined %d classes (culprit found: %v); blanket top-%d\n",
		otk.OutlierCandidates, otk.OutlierFoundBestSeller, otk.TopKCandidates)
	fmt.Println("fence sweep (inner multiplier → flagged classes):")
	for _, pt := range experiments.AblationFences(seed) {
		fmt.Printf("  %.1f → %d (culprit flagged: %v)\n", pt.Inner, pt.Outliers, pt.HasBestSeller)
	}
}
