// Mrctool computes miss-ratio curves (Mattson's stack algorithm) from
// page-access traces.
//
//	mrctool -in trace.bin -class BestSeller -mem 8192
//	mrctool -gen zipf -span 8000 -skew 1.2 -n 100000
//	mrctool -gen scan -span 7200 -n 100000 -csv
//
// With -in, the trace file must be in the format written by the trace
// package (see cmd/outlierlb -record). Without -class, all classes in the
// file are merged into one stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"outlierlb/internal/mrc"
	"outlierlb/internal/sim"
	"outlierlb/internal/trace"
)

func main() {
	in := flag.String("in", "", "trace file to read (binary trace format)")
	class := flag.String("class", "", "restrict to one query class from the trace file")
	gen := flag.String("gen", "", "synthesize a trace instead: zipf|scan|uniform")
	span := flag.Uint64("span", 8000, "page span of the synthetic generator")
	skew := flag.Float64("skew", 1.2, "zipf skew (>1)")
	n := flag.Int("n", 100000, "number of synthetic accesses")
	seed := flag.Uint64("seed", 1, "generator seed")
	mem := flag.Int("mem", 8192, "server memory in pages (caps curve parameters)")
	threshold := flag.Float64("threshold", mrc.DefaultThreshold, "acceptable-miss-ratio threshold")
	points := flag.Int("points", 32, "number of curve points to print")
	csv := flag.Bool("csv", false, "emit CSV instead of a bar chart")
	sampled := flag.Float64("sampled", 0, "use SHARDS-style spatial sampling at this rate (0 = exact)")
	flag.Parse()

	pages, err := loadPages(*in, *class, *gen, *span, *skew, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrctool:", err)
		os.Exit(1)
	}
	if len(pages) == 0 {
		fmt.Fprintln(os.Stderr, "mrctool: no page accesses")
		os.Exit(1)
	}

	var curve *mrc.Curve
	if *sampled > 0 && *sampled < 1 {
		sim := mrc.NewSampledSimulator(*sampled)
		for _, p := range pages {
			sim.Access(p)
		}
		curve = sim.Curve()
		fmt.Printf("(sampled at rate %.3f: tracked %d of %d accesses)\n",
			sim.Rate(), sim.Sampled(), sim.Total())
	} else {
		curve = mrc.Compute(pages)
	}
	params := curve.ParamsFor(*mem, *threshold)
	memAxis, miss := curve.Points(*points)

	if *csv {
		fmt.Println("memory_pages,miss_ratio")
		for i := range memAxis {
			fmt.Printf("%d,%.5f\n", memAxis[i], miss[i])
		}
	} else {
		for i := range memAxis {
			bar := strings.Repeat("#", int(miss[i]*60))
			fmt.Printf("%8d pages | %-60s %.3f\n", memAxis[i], bar, miss[i])
		}
	}
	fmt.Printf("accesses: %d, distinct reuse depth: %d pages\n", curve.Total(), curve.MaxMemory())
	fmt.Printf("total memory needed:  %6d pages (ideal miss ratio %.4f)\n",
		params.TotalMemory, params.IdealMissRatio)
	fmt.Printf("acceptable memory:    %6d pages (acceptable miss ratio %.4f)\n",
		params.AcceptableMemory, params.AcceptableMissRatio)
}

func loadPages(in, class, gen string, span uint64, skew float64, n int, seed uint64) ([]uint64, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			// Fall back to the CSV interchange format.
			if _, serr := f.Seek(0, 0); serr != nil {
				return nil, err
			}
			tr, err = trace.ReadCSV(f)
			if err != nil {
				return nil, err
			}
		}
		if class != "" {
			return tr.Pages(class), nil
		}
		pages := make([]uint64, len(tr))
		for i, a := range tr {
			pages[i] = a.Page
		}
		return pages, nil
	}
	rng := sim.NewRNG(seed)
	var g trace.Generator
	switch gen {
	case "zipf":
		g = trace.NewZipfSet(rng, 0, span, skew)
	case "scan":
		g = &trace.SequentialScan{Span: span}
	case "uniform":
		g = trace.NewUniformSet(rng, 0, span)
	case "":
		return nil, fmt.Errorf("need -in FILE or -gen zipf|scan|uniform")
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	return trace.Generate(g, n), nil
}
