// Tracetool inspects RUN_*.json flight recordings written by outlierlb
// and benchrunner (-run.out): it lists the sampled query traces, renders
// a span-tree timeline for one trace, breaks per-query latency into
// queue vs service vs retry time, and summarizes critical paths.
//
//	tracetool -run RUN_0.json                   # run summary + trace list
//	tracetool -run RUN_0.json -trace 123456     # ASCII timeline of one trace
//	tracetool -run RUN_0.json -phases           # queue/service/retry per trace
//	tracetool -run RUN_0.json -critical         # critical-path chains
//
// It also renders RESIL_*.json resilience scorecards written by
// benchrunner -resil:
//
//	tracetool -resil RESIL_0.json               # per-scenario resilience verdicts
//
// Every mode validates its input strictly: span trees must be
// well-formed (obs.Validate) and scorecard documents must carry the
// supported schema version; malformed input is reported, not rendered.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"outlierlb/internal/obs"
	"outlierlb/internal/resil"
)

func main() {
	runPath := flag.String("run", "", "RUN_*.json flight recording to inspect")
	resilPath := flag.String("resil", "", "RESIL_*.json resilience scorecard to render (instead of -run)")
	traceID := flag.String("trace", "", "render the span-tree timeline of this trace ID")
	phases := flag.Bool("phases", false, "break each trace's latency into queue/service/retry time")
	critical := flag.Bool("critical", false, "print each trace's critical path")
	n := flag.Int("n", 20, "traces to list/summarize (0 = all)")
	flag.Parse()

	if *resilPath != "" {
		if *runPath != "" || *traceID != "" || *phases || *critical {
			fmt.Fprintln(os.Stderr, "tracetool: -resil renders a scorecard document; it does not combine with -run/-trace/-phases/-critical")
			os.Exit(2)
		}
		printResil(*resilPath)
		return
	}
	if *runPath == "" {
		fmt.Fprintln(os.Stderr, "tracetool: need -run RUN_*.json (write one with outlierlb -run.out) or -resil RESIL_*.json (write one with benchrunner -resil)")
		os.Exit(2)
	}
	rec, err := obs.LoadRun(*runPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}

	bad := 0
	for _, root := range rec.Traces {
		if err := obs.Validate(root); err != nil {
			fmt.Fprintln(os.Stderr, "tracetool: malformed trace:", err)
			bad++
		}
	}

	switch {
	case *traceID != "":
		id, err := strconv.ParseUint(*traceID, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracetool: -trace %q: not a decimal trace ID\n", *traceID)
			os.Exit(2)
		}
		root := findTrace(rec, obs.TraceID(id))
		if root == nil {
			fmt.Fprintf(os.Stderr, "tracetool: trace %d not in %s (not sampled, unfinished, or evicted)\n", id, *runPath)
			os.Exit(1)
		}
		printTimeline(root)
	case *phases:
		printPhases(rec, *n)
	case *critical:
		printCritical(rec, *n)
	default:
		printSummary(rec, *runPath, *n)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "tracetool: %d malformed trace(s)\n", bad)
		os.Exit(1)
	}
}

// printResil renders a RESIL_*.json scorecard document: one line per
// (scenario, seed) with the milestone verdicts and times, then a
// verdict summary grouped by scenario.
func printResil(path string) {
	doc, err := resil.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: schema v%d, %s, %d scorecard(s)\n",
		path, doc.SchemaVersion, doc.GoVersion, len(doc.Scorecards))
	if doc.Timestamp != "" {
		fmt.Printf("recorded %s\n", doc.Timestamp)
	}
	fmt.Println()
	fmt.Printf("%-34s %5s %9s %9s %9s %8s %22s %9s\n",
		"SCENARIO", "SEED", "DETECT", "MITIGATE", "RECOVER", "REVERT", "FIRST DETECTION", "DEVIATION")
	milestone := func(ok bool, at float64) string {
		if !ok {
			return "never"
		}
		return fmt.Sprintf("+%.0fs", at)
	}
	type verdict struct{ runs, detected, mitigated, recovered, reverted int }
	order := []string{}
	byScenario := map[string]*verdict{}
	for _, sc := range doc.Scorecards {
		fmt.Printf("%-34s %5d %9s %9s %9s %8v %22s %+8.1f%%\n",
			sc.Scenario, sc.Seed,
			milestone(sc.Detected, sc.TimeToDetect),
			milestone(sc.Mitigated, sc.TimeToMitigate),
			milestone(sc.Recovered, sc.TimeToRecover),
			sc.Reverted, sc.DetectKind, 100*sc.SteadyStateDeviation)
		v := byScenario[sc.Scenario]
		if v == nil {
			v = &verdict{}
			byScenario[sc.Scenario] = v
			order = append(order, sc.Scenario)
		}
		v.runs++
		if sc.Detected {
			v.detected++
		}
		if sc.Mitigated {
			v.mitigated++
		}
		if sc.Recovered {
			v.recovered++
		}
		if sc.Reverted {
			v.reverted++
		}
	}
	fmt.Println()
	for _, name := range order {
		v := byScenario[name]
		fmt.Printf("%-34s detected %d/%d, mitigated %d/%d, recovered %d/%d, reverted %d/%d\n",
			name, v.detected, v.runs, v.mitigated, v.runs, v.recovered, v.runs, v.reverted, v.runs)
	}
}

func findTrace(rec *obs.RunRecording, id obs.TraceID) *obs.Span {
	for _, root := range rec.Traces {
		if root.Trace == id {
			return root
		}
	}
	return nil
}

// limit applies -n to the trace list, keeping the most recent traces
// (the ring is oldest-first).
func limit(traces []*obs.Span, n int) []*obs.Span {
	if n > 0 && len(traces) > n {
		return traces[len(traces)-n:]
	}
	return traces
}

func printSummary(rec *obs.RunRecording, path string, n int) {
	fmt.Printf("%s: tool=%s scenario=%s seed=%d sample_rate=%g\n",
		path, rec.Tool, rec.Scenario, rec.Seed, rec.SampleRate)
	fmt.Printf("%d ticks, %d metric series\n", len(rec.Ticks), len(rec.Series))
	st := rec.TraceStats
	fmt.Printf("queries: %d started, %d sampled, %d finished, %d evicted from ring\n",
		st.Started, st.Sampled, st.Finished, st.Evicted)
	traces := limit(rec.Traces, n)
	if len(traces) == 0 {
		fmt.Println("no traces retained (run with -trace.sample > 0)")
		return
	}
	fmt.Println()
	fmt.Printf("%-20s %-10s %-16s %10s %10s %6s %s\n",
		"TRACE", "APP", "CLASS", "START", "DURATION", "SPANS", "ERR")
	for _, root := range traces {
		fmt.Printf("%-20d %-10s %-16s %10.3f %9.4fs %6d %s\n",
			root.Trace, root.App, root.Class, root.Start, root.End-root.Start,
			countSpans(root), root.Err)
	}
	if len(traces) < len(rec.Traces) {
		fmt.Printf("(%d older traces omitted; -n 0 shows all)\n", len(rec.Traces)-len(traces))
	}
}

func countSpans(s *obs.Span) int {
	n := 1
	for _, c := range s.Children {
		n += countSpans(c)
	}
	return n
}

// printTimeline renders one trace as an indented gantt: each span on a
// line with a bar showing its interval relative to the root window.
func printTimeline(root *obs.Span) {
	const width = 48
	total := root.End - root.Start
	fmt.Printf("trace %d: %s/%s  [%g, %g]  %.4fs\n", root.Trace, root.App, root.Class, root.Start, root.End, total)
	p := obs.Breakdown(root)
	fmt.Printf("phases: queue %.4fs, service %.4fs, retry %.4fs\n\n", p.Queue, p.Service, p.Retry)
	var walk func(s *obs.Span, depth int)
	walk = func(s *obs.Span, depth int) {
		label := string(s.Kind)
		if s.Name != "" {
			label += " " + s.Name
		}
		if s.Server != "" && !strings.Contains(label, s.Server) {
			label += " @" + s.Server
		}
		if s.Err != "" {
			label += " !" + s.Err
		}
		fmt.Printf("%-44s %9.4fs |%s|\n", strings.Repeat("  ", depth)+label, s.End-s.Start, bar(s, root, width))
		for _, e := range s.Events {
			fmt.Printf("%s* %s %s\n", strings.Repeat("  ", depth+1), e.Kind, e.Detail)
		}
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

// bar draws a span's interval on a width-column ruler spanning the root
// window, clipping spans (async write applies) that outlast the root.
func bar(s, root *obs.Span, width int) string {
	total := root.End - root.Start
	if total <= 0 {
		return strings.Repeat(" ", width)
	}
	a := int(float64(width) * (s.Start - root.Start) / total)
	b := int(float64(width)*(s.End-root.Start)/total + 0.5)
	if a < 0 {
		a = 0
	}
	if b > width {
		b = width
	}
	if b <= a {
		b = a + 1 // zero-length spans still get one cell
		if b > width {
			a, b = width-1, width
		}
	}
	return strings.Repeat(" ", a) + strings.Repeat("#", b-a) + strings.Repeat(" ", width-b)
}

func printPhases(rec *obs.RunRecording, n int) {
	traces := limit(rec.Traces, n)
	if len(traces) == 0 {
		fmt.Println("no traces retained (run with -trace.sample > 0)")
		return
	}
	fmt.Printf("%-20s %-16s %10s %10s %10s %10s\n", "TRACE", "CLASS", "TOTAL", "QUEUE", "SERVICE", "RETRY")
	type agg struct {
		n                             int
		total, queue, service, retry_ float64
	}
	byClass := map[string]*agg{}
	for _, root := range traces {
		p := obs.Breakdown(root)
		total := root.End - root.Start
		fmt.Printf("%-20d %-16s %9.4fs %9.4fs %9.4fs %9.4fs\n",
			root.Trace, root.Class, total, p.Queue, p.Service, p.Retry)
		key := root.App + "/" + root.Class
		a := byClass[key]
		if a == nil {
			a = &agg{}
			byClass[key] = a
		}
		a.n++
		a.total += total
		a.queue += p.Queue
		a.service += p.Service
		a.retry_ += p.Retry
	}
	keys := make([]string, 0, len(byClass))
	for k := range byClass {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println()
	fmt.Printf("%-28s %6s %10s %10s %10s %10s\n", "CLASS MEAN", "N", "TOTAL", "QUEUE", "SERVICE", "RETRY")
	for _, k := range keys {
		a := byClass[k]
		d := float64(a.n)
		fmt.Printf("%-28s %6d %9.4fs %9.4fs %9.4fs %9.4fs\n",
			k, a.n, a.total/d, a.queue/d, a.service/d, a.retry_/d)
	}
}

func printCritical(rec *obs.RunRecording, n int) {
	traces := limit(rec.Traces, n)
	if len(traces) == 0 {
		fmt.Println("no traces retained (run with -trace.sample > 0)")
		return
	}
	for _, root := range traces {
		path := obs.CriticalPath(root)
		fmt.Printf("trace %d (%s/%s, %.4fs):\n", root.Trace, root.App, root.Class, root.End-root.Start)
		for i, s := range path {
			label := string(s.Kind)
			if s.Name != "" {
				label += " " + s.Name
			}
			if i > 0 {
				// Waiting time between this span's end and its parent's:
				// the tail the parent spends after its last child.
				if tail := path[i-1].End - s.End; tail > 1e-12 {
					fmt.Printf("    %-40s (+%.4fs tail in parent)\n", fmt.Sprintf("%s %.4fs", label, s.End-s.Start), tail)
					continue
				}
			}
			fmt.Printf("    %s %.4fs\n", label, s.End-s.Start)
		}
	}
}
