// Outlierlb runs the paper's dynamic-change scenarios end-to-end and
// narrates the controller's diagnosis and retuning actions.
//
//	outlierlb -scenario cpu            # §5.2 sinusoid load, reactive provisioning
//	outlierlb -scenario indexdrop      # §5.3 O_DATE index drop, quota enforcement
//	outlierlb -scenario consolidation  # §5.4 two apps in one DBMS, class reschedule
//	outlierlb -scenario iocontention   # §5.5 two VMs, dom-0 I/O interference
//	outlierlb -scenario lockcontention # §7 future work: lock-wait outliers
//	outlierlb -scenario failure        # §7 future work: replica crash + recovery
//	outlierlb -scenario grayfailure    # chaos: one replica's disk degrades 8x
//	outlierlb -scenario flapping       # chaos: one replica cycles down/up
//	outlierlb -scenario blackout       # chaos: one server's metrics go dark
//	outlierlb -scenario overload       # chaos: 2x load pulse, impact-ranked shedding
//	outlierlb -scenario byzantine      # adversarial: one replica's monitoring lies
//	outlierlb -scenario snapcorrupt    # adversarial: dropped + duplicated snapshots
//	outlierlb -scenario clockskew      # adversarial: the controller's clock jumps
//	outlierlb -scenario flash-crowd    # temporal: referral surge over an OLTP baseline
//	outlierlb -scenario diurnal-shift  # temporal: day/night cycle, provision/shrink
//	outlierlb -scenario olap-antagonist # temporal: scan-heavy OLAP beside OLTP (§5.4)
//	outlierlb -scenario trace-replay-identity # record→replay bit-identity check
//	outlierlb -scenario guard-...      # pathological policy under the action watchdog
//	outlierlb -record tpcw.trace       # dump a TPC-W page-access trace for mrctool
//
// With -wl.record FILE any scenario's offered load is captured as a
// workload-trace-v2; -wl.replay FILE feeds a recorded trace back in
// place of the live load generators (see WORKLOADS.md).
//
// With -sig.store FILE the controller warm-starts from signatures saved
// by a previous run and saves its own back on completion.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"outlierlb/internal/experiments"
	"outlierlb/internal/obscli"
	"outlierlb/internal/sim"
	"outlierlb/internal/trace"
	"outlierlb/internal/workload/rubis"
	"outlierlb/internal/workload/tpcw"
)

// scenarioDef registers one runnable scenario: its flag value, the
// one-line description printed by the usage listing, and the runner.
type scenarioDef struct {
	name string
	desc string
	run  func(seed uint64)
}

// scenarios is the full registry, in listing order. -scenario values
// are validated against it up front, so a typo fails fast with the
// valid names instead of silently running nothing.
func scenarios() []scenarioDef {
	defs := []scenarioDef{
		{"cpu", "§5.2 sinusoid load, reactive provisioning", runCPU},
		{"indexdrop", "§5.3 O_DATE index drop, quota enforcement", runIndexDrop},
		{"consolidation", "§5.4 two apps in one DBMS, class reschedule", runConsolidation},
		{"iocontention", "§5.5 two VMs, dom-0 I/O interference", runIOContention},
		{"lockcontention", "§7 future work: lock-wait outliers", runLockContention},
		{"failure", "§7 future work: replica crash + recovery", runFailure},
		{"grayfailure", "chaos: one replica's disk degrades 8x for 200s", func(seed uint64) {
			runChaos(seed, "one replica's disk degrades 8x for 200s (gray failure: it answers, slowly)",
				experiments.ChaosGrayFailure)
		}},
		{"flapping", "chaos: one replica cycles down/up every ~15s", func(seed uint64) {
			runChaos(seed, "one replica cycles down/up every ~15s for 120s",
				experiments.ChaosFlapping)
		}},
		{"blackout", "chaos: one server's metrics go dark for 150s", func(seed uint64) {
			runChaos(seed, "one server's monitoring goes dark for 150s while it keeps serving",
				experiments.ChaosMetricBlackout)
		}},
		{"overload", "chaos: 2x load pulse, impact-ranked shedding", runOverload},
		{"byzantine", "adversarial: one replica's monitoring lies (scaled CPU, inflated latency)", func(seed uint64) {
			runChaos(seed, "one healthy replica's monitoring lies for 200s (scaled CPU, 8x latency snapshots)",
				experiments.ChaosByzantineMetrics)
		}},
		{"snapcorrupt", "adversarial: one engine's snapshots dropped, then duplicated", func(seed uint64) {
			runChaos(seed, "one engine's snapshots are dropped for 95s, then a stale snapshot is re-delivered for 95s",
				experiments.ChaosSnapshotCorruption)
		}},
		{"clockskew", "adversarial: the controller's clock steps +60s and back", func(seed uint64) {
			runChaos(seed, "the controller's clock steps +60s at t=200s and back at t=400s",
				experiments.ChaosClockSkew)
		}},
		{"ctrl-partition", "control channel: the controller is partitioned from every engine for 150s", func(seed uint64) {
			runChaos(seed, "the controller endpoint is partitioned in both directions for 150s: "+
				"unreachable declarations, epoch fencing, engine autonomy, then recovery",
				experiments.ChaosCtrlPartition)
		}},
		{"ctrl-asym", "control channel: one engine's link toward the controller is cut for 150s", func(seed uint64) {
			runChaos(seed, "one engine's link toward the controller is cut for 150s (half-open): "+
				"the controller declares it unreachable from silence while its lease keeps renewing",
				experiments.ChaosCtrlAsymPartition)
		}},
		{"ctrl-lossy", "control channel: 30% loss and 15% duplication under an overload pulse", func(seed uint64) {
			runChaos(seed, "every control link degrades to 30% loss, 15% duplication and jittered latency for 200s "+
				"while an overload pulse forces retuning actions through it",
				experiments.ChaosCtrlLossy)
		}},
		{"ctrl-delayed", "control channel: snapshot reports delayed past the measurement interval", func(seed uint64) {
			runChaos(seed, "engine snapshot reports are delayed by 12s — past the 10s interval — for 150s: "+
				"the staleness guard must reject them while the failure detector stays reachable",
				experiments.ChaosCtrlDelayedSnapshots)
		}},
		{"flash-crowd", "temporal: referral-event crowd surges over an OLTP baseline in MMPP bursts", func(seed uint64) {
			runTemporal(seed, "a flash crowd lands on a steady OLTP baseline at t=300s — 10s ramp to a "+
				"160 qps peak, power-law decay — and the controller must provision into the surge",
				experiments.FlashCrowd)
		}},
		{"diurnal-shift", "temporal: closed-loop clients follow a day/night cycle; provision into the peak, shrink after", func(seed uint64) {
			runTemporal(seed, "closed-loop clients follow a diurnal cycle: the trough fits one replica, "+
				"the midday peak does not — capacity must follow the pattern in both directions",
				experiments.DiurnalShift)
		}},
		{"olap-antagonist", "temporal: a scan-heavy OLAP app co-located inside one TPC-W replica's engine", func(seed uint64) {
			runTemporal(seed, "a scan-heavy OLAP antagonist attaches inside the second TPC-W replica's "+
				"database engine for [300s, 500s), polluting the shared buffer pool (§5.4 co-location)",
				experiments.OLAPAntagonist)
		}},
		{"trace-replay-identity", "temporal: record flash-crowd's offered load, replay it, require a bit-identical run", func(seed uint64) {
			runTemporal(seed, "flash-crowd runs once while its offered load is recorded as workload-trace-v2, "+
				"then the trace is replayed into a fresh identically-seeded testbed; the replayed "+
				"run must reproduce the recorded intervals and actions byte-for-byte",
				experiments.TraceReplayIdentity)
		}},
	}
	for _, tpl := range experiments.GuardTemplates() {
		tpl := tpl
		defs = append(defs, scenarioDef{
			"guard-" + tpl,
			"pathological " + tpl + " policy under the action watchdog",
			func(seed uint64) { runGuard(seed, tpl) },
		})
	}
	return defs
}

func scenarioNames() string {
	var names []string
	for _, d := range scenarios() {
		names = append(names, d.name)
	}
	return strings.Join(names, "|")
}

func main() {
	scenario := flag.String("scenario", "", scenarioNames())
	seed := flag.Uint64("seed", 1, "simulation seed")
	record := flag.String("record", "", "write a synthetic TPC-W page-access trace to FILE and exit")
	recordApp := flag.String("record-app", "tpcw", "application to record: tpcw|tpcw-noindex|rubis")
	recordN := flag.Int("record-n", 500000, "accesses to record")
	obsAddr := flag.String("obs.addr", "", "serve /metrics and /debug endpoints on this address (e.g. :9090)")
	verbose := flag.Bool("v", false, "print each controller decision to stderr as it happens")
	sigStore := flag.String("sig.store", "",
		"persist stable-state signatures to FILE: warm-start on launch, save on completion")
	traceSample := flag.Float64("trace.sample", 0,
		"head-sample this fraction of queries into span traces (0 disables, 1.0 traces everything)")
	traceRing := flag.Int("trace.ring", 0,
		"finished traces retained for /debug/trace (0 = default 512)")
	runOut := flag.String("run.out", "",
		"flush a RUN_*.json flight recording (metric time series + sampled traces) to FILE on completion")
	pprof := flag.Bool("obs.pprof", false, "mount net/http/pprof under /debug/pprof/ on -obs.addr")
	eventCore := obscli.EventCoreFlag()
	ctrlFlags := obscli.RegisterCtrlFlags()
	wlFlags := obscli.RegisterWlFlags()
	flag.Parse()
	experiments.SetEventCore(*eventCore)
	ctrlFlags.Apply()

	if *record != "" {
		// -record dumps a page-access trace and exits without running a
		// scenario, so a -wl.* flag would be silently ignored.
		if name, set := wlFlags.AnySet(); set {
			fmt.Fprintf(os.Stderr, "outlierlb: %s applies only to scenario runs, not -record\n", name)
			os.Exit(2)
		}
		if err := recordTrace(*record, *recordApp, *recordN, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "outlierlb:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d accesses to %s\n", *recordN, *record)
		return
	}

	// Validate -scenario before any session or simulation state exists:
	// a typo must fail fast with the valid names, not start an obs
	// server and then die.
	var chosen *scenarioDef
	for _, d := range scenarios() {
		if d.name == *scenario {
			d := d
			chosen = &d
			break
		}
	}
	if chosen == nil {
		if *scenario == "" {
			fmt.Fprintln(os.Stderr, "outlierlb: need -scenario NAME or -record FILE; scenarios:")
		} else {
			fmt.Fprintf(os.Stderr, "outlierlb: unknown scenario %q; valid scenarios:\n", *scenario)
		}
		for _, d := range scenarios() {
			fmt.Fprintf(os.Stderr, "  %-35s %s\n", d.name, d.desc)
		}
		os.Exit(2)
	}

	session, err := obscli.Start(obscli.Options{
		Addr:        *obsAddr,
		Verbose:     *verbose,
		SigPath:     *sigStore,
		TraceSample: *traceSample,
		TraceRing:   *traceRing,
		RunOut:      *runOut,
		PProf:       *pprof,
		Tool:        "outlierlb",
		Scenario:    *scenario,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "outlierlb:", err)
		os.Exit(1)
	}
	if err := wlFlags.Apply(); err != nil {
		fmt.Fprintln(os.Stderr, "outlierlb:", err)
		os.Exit(2)
	}

	chosen.run(*seed)

	if err := wlFlags.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "outlierlb:", err)
		os.Exit(1)
	}
	session.Finish()
	session.WaitForInterrupt()
}

func runTemporal(seed uint64, desc string, fn func(uint64) (*experiments.TemporalResult, error)) {
	fmt.Println("scenario:", desc)
	fmt.Println()
	r, err := fn(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "outlierlb:", err)
		os.Exit(1)
	}
	fmt.Printf("baseline latency:   %.3fs\n", r.BaselineLatency)
	fmt.Printf("surge latency:      %.3fs\n", r.SurgeLatency)
	fmt.Printf("final latency:      %.3fs\n", r.FinalLatency)
	fmt.Printf("client errors:      %d\n", r.ClientErrors)
	fmt.Printf("offered load:       %d interactions (%d shed by admission)\n", r.Offered, r.Shed)
	fmt.Printf("capacity actions:   %d provision(s), %d shrink(s)\n", r.Provisions, r.Shrinks)
	fmt.Printf("final met streak:   %d interval(s)\n", r.FinalMetStreak)
	sc := r.Scorecard
	fmt.Printf("scorecard:          detected=%v (%s, +%.0fs) mitigated=%v (%s, +%.0fs)\n",
		sc.Detected, sc.DetectKind, sc.TimeToDetect, sc.Mitigated, sc.MitigateKind, sc.TimeToMitigate)
	fmt.Printf("recovery:           recovered=%v time-to-recover=%.0fs steady-state deviation %+.1f%%\n",
		sc.Recovered, sc.TimeToRecover, 100*sc.SteadyStateDeviation)
	fmt.Println()
	for _, a := range r.Actions {
		fmt.Println("action:", a)
	}
}

func runGuard(seed uint64, template string) {
	fmt.Printf("scenario: pathological %s policy is switched on mid-run;\n", template)
	fmt.Println("the action watchdog must detect each harmful action by its fitness")
	fmt.Println("regression, roll it back, and contain the repetition")
	fmt.Println()
	r, err := experiments.GuardScenario(seed, template)
	if err != nil {
		fmt.Fprintln(os.Stderr, "outlierlb:", err)
		os.Exit(1)
	}
	fmt.Printf("policy window:      [%.0fs, %.0fs]\n", r.EnableAt, r.DisableAt)
	fmt.Printf("protected latency:  %.3fs (inside the policy window)\n", r.ProtectedLatency)
	fmt.Printf("final latency:      %.3fs (after the policy was pulled)\n", r.FinalLatency)
	fmt.Printf("client errors:      %d\n", r.ClientErrors)
	fmt.Printf("watchdog:           %d actions, %d vetoes, %d suspects, %d reverts, %d storm trips\n",
		r.Watchdog.Actions, r.Watchdog.Vetoes, r.Watchdog.Suspects, r.Watchdog.Reverts, r.Watchdog.Trips)
	sc := r.Scorecard
	fmt.Printf("scorecard:          detected=%v (%s, +%.0fs) mitigated=%v (%s, +%.0fs) reverted=%v\n",
		sc.Detected, sc.DetectKind, sc.TimeToDetect, sc.Mitigated, sc.MitigateKind, sc.TimeToMitigate, sc.Reverted)
	fmt.Printf("recovery:           recovered=%v time-to-recover=%.0fs steady-state deviation %+.1f%%\n",
		sc.Recovered, sc.TimeToRecover, 100*sc.SteadyStateDeviation)
	fmt.Println()
	for _, a := range r.Actions {
		fmt.Println("action:", a)
	}
}

func runFailure(seed uint64) {
	fmt.Println("scenario: one of two TPC-W replicas crashes under load")
	fmt.Println()
	r, err := experiments.FailureRecovery(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "outlierlb:", err)
		os.Exit(1)
	}
	fmt.Printf("healthy latency:   %.3fs (two replicas)\n", r.BeforeLatency)
	fmt.Printf("failover latency:  %.3fs (survivor saturated)\n", r.DuringLatency)
	fmt.Printf("recovered latency: %.3fs (replacement provisioned: %v)\n", r.AfterLatency, r.Provisioned)
	fmt.Printf("client errors:     %d\n", r.ClientErrors)
	fmt.Println()
	for _, a := range r.Actions {
		fmt.Println("action:", a)
	}
}

func runChaos(seed uint64, desc string, fn func(uint64) (*experiments.ChaosResult, error)) {
	fmt.Println("scenario:", desc)
	fmt.Println()
	r, err := fn(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "outlierlb:", err)
		os.Exit(1)
	}
	fmt.Printf("target replica:     %s\n", r.Target)
	fmt.Printf("healthy latency:    %.3fs\n", r.HealthyLatency)
	fmt.Printf("fault latency:      %.3fs\n", r.FaultLatency)
	fmt.Printf("recovered latency:  %.3fs\n", r.FinalLatency)
	fmt.Printf("client errors:      %d\n", r.ClientErrors)
	fmt.Printf("breaker trips:      %d (probes %d, recoveries %d)\n", r.BreakerTrips, r.Probes, r.Recoveries)
	fmt.Printf("read retries:       %d\n", r.Retries)
	fmt.Printf("degraded analyses:  %d\n", r.DegradedEvents)
	fmt.Printf("capacity actions:   %d provision(s), %d shrink(s)\n", r.Provisions, r.Shrinks)
	fmt.Printf("target ended run:   healthy=%v\n", r.TargetHealthy)
	if r.CtrlSent > 0 {
		fmt.Printf("control channel:    %d sent, %d dropped, %d duplicated\n",
			r.CtrlSent, r.CtrlDropped, r.CtrlDuplicated)
		fmt.Printf("control protocol:   epoch %d, %d retries, %d dup-suppressed, %d stale-epoch rejections, %d abandoned\n",
			r.Ctrl.Epoch, r.Ctrl.Retries, r.Ctrl.DupSuppressed, r.Ctrl.EpochRejections, r.Ctrl.Abandoned)
		fmt.Printf("failure detector:   %d unreachable declaration(s), %d autonomy episode(s), max applications per action %d\n",
			r.CtrlUnreachableEvents, r.Ctrl.AutonomyEpisodes, r.Ctrl.MaxApplications)
	}
	sc := r.Scorecard
	fmt.Printf("scorecard:          detected=%v (%s, +%.0fs) mitigated=%v (%s, +%.0fs) reverted=%v\n",
		sc.Detected, sc.DetectKind, sc.TimeToDetect, sc.Mitigated, sc.MitigateKind, sc.TimeToMitigate, sc.Reverted)
	fmt.Printf("recovery:           recovered=%v time-to-recover=%.0fs steady-state deviation %+.1f%%\n",
		sc.Recovered, sc.TimeToRecover, 100*sc.SteadyStateDeviation)
	fmt.Println()
	for _, a := range r.Actions {
		fmt.Println("action:", a)
	}
}

func runOverload(seed uint64) {
	fmt.Println("scenario: a 2x load pulse on a fully allocated cluster; admission control")
	fmt.Println("sheds the lowest-impact query classes until the SLA recovers, then readmits them")
	fmt.Println()
	r, err := experiments.Overload(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "outlierlb:", err)
		os.Exit(1)
	}
	fmt.Printf("nominal latency:    %.3fs\n", r.NominalLatency)
	fmt.Printf("peak latency:       %.3fs (before shedding bites)\n", r.PeakLatency)
	fmt.Printf("protected latency:  %.3fs (Checkout, during overload)\n", r.ProtectedLatency)
	fmt.Printf("final latency:      %.3fs\n", r.FinalLatency)
	fmt.Printf("client errors:      %d\n", r.ClientErrors)
	fmt.Printf("shed interactions:  %d\n", r.ShedInteractions)
	fmt.Printf("shed order:         %v (resheds %d, readmits %d)\n", r.ShedOrder, r.Resheds, r.Readmits)
	fmt.Printf("still shed at end:  %v\n", r.FinalShedClasses)
	fmt.Println()
	for _, a := range r.Actions {
		fmt.Println("action:", a)
	}
}

func runLockContention(seed uint64) {
	fmt.Println("scenario: a write query invoked with wrong arguments convoys the accounts table")
	fmt.Println("(the paper's §7 future work: outlier detection for lock contention)")
	fmt.Println()
	r := experiments.LockContention(seed)
	fmt.Printf("stable latency:    %.3fs\n", r.StableLatency)
	fmt.Printf("contended latency: %.3fs (%.0fx)\n", r.ContendedLatency, r.ContendedLatency/r.StableLatency)
	fmt.Println()
	for _, a := range r.Actions {
		fmt.Println("action:", a)
	}
	if r.ReportedVictim != "" {
		fmt.Printf("\nthe detector flagged %q as the most affected context and named the holder in the report.\n", r.ReportedVictim)
	}
}

func runCPU(seed uint64) {
	fmt.Println("scenario: sinusoid client load against TPC-W (§5.2)")
	fmt.Println("the controller provisions replicas on CPU saturation and releases them at the trough")
	fmt.Println()
	r := experiments.Figure3(seed)
	for i := range r.Times {
		if i%6 != 0 && r.Latency[i] <= r.SLA {
			continue
		}
		status := "ok"
		if r.Latency[i] > r.SLA {
			status = "SLA VIOLATION"
		}
		fmt.Printf("t=%5.0fs clients=%4d machines=%d latency=%6.3fs %s\n",
			r.Times[i], r.Clients[i], r.Machines[i], r.Latency[i], status)
	}
	fmt.Println()
	for _, a := range r.Actions {
		fmt.Println("action:", a)
	}
}

func runIndexDrop(seed uint64) {
	fmt.Println("scenario: the O_DATE index is dropped; BestSeller degrades to a table scan (§5.3)")
	fmt.Println()
	r := experiments.Figure4(seed)
	fmt.Println("per-class ratios vs stable state (latency / throughput / misses / read-ahead):")
	for i, c := range r.Classes {
		fmt.Printf("  %2d %-22s %7.2f %7.2f %7.2f %10.2f\n", i+1, c,
			r.LatencyRatio[i], r.ThroughputRatio[i], r.MissesRatio[i], r.ReadAheadRatio[i])
	}
	fmt.Printf("\noutlier contexts on memory counters: %v\n", r.MemoryOutliers)
	fmt.Printf("MRC recomputation confirms: %v\n", r.Confirmed)
	quota, migrate := experiments.AblationQuotaVsMigrate(seed)
	fmt.Printf("\nremedies: quota keeps 1 machine at %.3fs avg; migration spends %d machines for %.3fs\n",
		quota.FinalLatency, migrate.ServersUsed, migrate.FinalLatency)
}

func runConsolidation(seed uint64) {
	fmt.Println("scenario: RUBiS starts inside TPC-W's database engine, sharing its buffer pool (§5.4)")
	fmt.Println()
	r := experiments.Table2(seed)
	for _, row := range r.Rows {
		fmt.Printf("%-38s latency=%6.3fs WIPS=%6.2f\n", row.Placement, row.Latency, row.WIPS)
	}
	fmt.Println()
	for _, a := range r.Actions {
		fmt.Println("action:", a)
	}
	fmt.Printf("\nthe diagnosis rescheduled %q onto a different replica\n", r.MovedClass)
}

func runIOContention(seed uint64) {
	fmt.Println("scenario: two RUBiS instances in two Xen domains on one physical server (§5.5)")
	fmt.Println()
	r := experiments.Table3(seed)
	for _, row := range r.Rows {
		fmt.Printf("domain-1=%-8s domain-2=%-22s latency=%6.3fs WIPS=%6.2f\n",
			row.Domain1, row.Domain2, row.Latency, row.WIPS)
	}
	fmt.Printf("\ndiagnosis from dom-0 statistics: CPU %.0f%% (not saturated); %s contributes %.0f%% of its application's I/O\n",
		100*r.CPUUtilization, r.TopIOClass, 100*r.TopIOShare)
	fmt.Println("remedy: reschedule that class onto a different physical machine")
}

func recordTrace(path, app string, n int, seed uint64) error {
	rng := sim.NewRNG(seed)
	var classes []string
	var gens []trace.Generator
	var weights []float64
	switch app {
	case "tpcw", "tpcw-noindex":
		a := tpcw.New(rng, tpcw.Options{DropODateIndex: app == "tpcw-noindex"})
		mix := tpcw.Mix()
		for i, spec := range a.Classes {
			classes = append(classes, spec.ID.Class)
			gens = append(gens, spec.Pattern)
			weights = append(weights, mix[i].Weight*float64(spec.PagesPerQuery))
		}
	case "rubis":
		a := rubis.New(rng, "")
		mix := rubis.Mix("")
		for i, spec := range a.Classes {
			classes = append(classes, spec.ID.Class)
			gens = append(gens, spec.Pattern)
			weights = append(weights, mix[i].Weight*float64(spec.PagesPerQuery))
		}
	default:
		return fmt.Errorf("unknown application %q", app)
	}
	tr := trace.Interleave(rng.Fork(), n, classes, gens, weights)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.Write(f)
}
