#!/bin/sh
# ci.sh — the checks a change must pass before merging:
# vet, full build, and the test suite under the race detector
# (the obs package is read concurrently by the HTTP endpoints
# while the simulation writes, so -race is load-bearing).
set -eux

go vet ./...
go build ./...
go test -race ./...

# Seed-pinned chaos smoke run: gray-failure + flapping under seed 1,
# short mode. The full 3-seed chaos suite already ran above; this run
# proves the scenarios stay deterministic and clean when invoked the
# way an operator would rerun them.
go test -short -run TestChaosSmoke -count=1 ./internal/experiments/
