#!/bin/sh
# ci.sh — the checks a change must pass before merging:
# vet, full build, and the test suite under the race detector
# (the obs package is read concurrently by the HTTP endpoints
# while the simulation writes, so -race is load-bearing).
set -eux

go vet ./...
go build ./...
go test -race ./...
