#!/bin/sh
# ci.sh — the checks a change must pass before merging:
# formatting, vet, doc coverage, full build, and the test suite under
# the race detector (the obs package is read concurrently by the HTTP
# endpoints while the simulation writes, and the engine's statistics
# pipeline fans out across goroutines, so -race is load-bearing).
set -eux

# Formatting gate: gofmt prints offending files; any output fails.
test -z "$(gofmt -l .)"

go vet ./...

# Doc-coverage gate: every internal package must carry a package
# comment documenting its role and concurrency/ownership rules.
test -z "$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/...)"

go build ./...

# Fast race pass over the concurrency-critical packages (short mode):
# sharded collectors, the background MRC worker, and the engine's
# statistics pipeline with 8+ producer goroutines racing a snapshotter.
go test -race -short -count=1 ./internal/metrics/ ./internal/mrc/ ./internal/engine/

go test -race ./...

# Seed-pinned chaos smoke run: gray-failure + flapping under seed 1,
# short mode. The full 3-seed chaos suite already ran above; this run
# proves the scenarios stay deterministic and clean when invoked the
# way an operator would rerun them.
go test -short -run TestChaosSmoke -count=1 ./internal/experiments/
