#!/bin/sh
# ci.sh — the checks a change must pass before merging:
# formatting, vet, doc coverage, full build, and the test suite under
# the race detector (the obs package is read concurrently by the HTTP
# endpoints while the simulation writes, and the engine's statistics
# pipeline fans out across goroutines, so -race is load-bearing).
set -eux

# Formatting gate: gofmt prints offending files; any output fails.
test -z "$(gofmt -l .)"

go vet ./...

# Doc-coverage gate: every internal package must carry a package
# comment documenting its role and concurrency/ownership rules.
test -z "$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/...)"

go build ./...

# Fast race pass over the concurrency-critical packages (short mode):
# sharded collectors, the background MRC worker, and the engine's
# statistics pipeline with 8+ producer goroutines racing a snapshotter.
go test -race -short -count=1 ./internal/metrics/ ./internal/mrc/ ./internal/engine/

# The experiments package alone runs ~14 min under the race detector
# (the chaos, overload, guard and adversarial suites are full
# simulations × 3 seeds each), so the default 10 min per-package test
# timeout is not enough.
go test -race -timeout 20m ./...

# Seed-pinned chaos smoke run: gray-failure + flapping under seed 1,
# short mode. The full 3-seed chaos suite already ran above; this run
# proves the scenarios stay deterministic and clean when invoked the
# way an operator would rerun them.
go test -short -run TestChaosSmoke -count=1 ./internal/experiments/

# Overload smoke run: the 2x load pulse must shed lowest-impact classes
# first, keep the protected class inside its latency bound, and readmit
# everything once the pulse passes — rerun seed-pinned like the chaos
# smoke above.
go test -short -run 'TestOverloadProtection|TestOverloadDeterminism' -count=1 ./internal/experiments/

# Event-core determinism smoke: run the §5.3 diagnosis scenario twice
# through the discrete-event core under 2 pinned seeds (short mode) and
# require byte-identical metrics snapshots and span trees, plus the
# inline-path identity and phase-traffic checks. The full 3-seed sweep
# and the double Figure-3 on/off comparison already ran above; this rerun
# pins the operator-facing invocation. See DESIGN.md §10.
go test -short -run TestEventCore -count=1 ./internal/experiments/

# Performance regression gate: run the suite in short mode and compare
# against the committed seed baseline at ±30% — wide enough to absorb
# machine-to-machine variance, tight enough to catch a hot path going
# quadratic. benchrunner itself skips the comparison (exit 0, with a
# notice) when the host is too noisy to gate, so a loaded CI runner
# degrades to a warning instead of a flaky failure. See PERFORMANCE.md.
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "$BENCH_TMP"' EXIT
go run ./cmd/benchrunner -suite.short -out "$BENCH_TMP/BENCH_ci.json" -baseline BENCH_0.json -tol 0.30

# Tracetool smoke: record a fully-traced §5.2 run to a flight-recorder
# file, then make tracetool decode it strictly and render the per-phase
# breakdown (tracetool exits non-zero on any malformed span tree).
go run ./cmd/outlierlb -scenario cpu -trace.sample 1.0 -run.out "$BENCH_TMP/RUN_ci.json" >/dev/null
go run ./cmd/tracetool -run "$BENCH_TMP/RUN_ci.json" -phases >/dev/null

# Temporal workload smoke: one flash-crowd surge under seed 1 through
# benchrunner's experiment runner — the open-loop driver, the surge
# provisioning, and the decay-side shrink all exercised the way an
# operator would invoke them (the full 3-seed suite already ran under
# -race above).
go run ./cmd/benchrunner -exp flash-crowd -seed 1 >/dev/null

# Trace record/replay identity: record the flash-crowd offered load to
# a workload-trace-v2 file via -wl.record, replay it via -wl.replay,
# and require byte-identical stdout. This gates the whole recording
# seam end to end — CLI flags, trace codec, replayer scheduling — on
# top of the in-process TestFig3RecordReplayIdentity that already ran
# in the test suite. See WORKLOADS.md §6.
go run ./cmd/outlierlb -scenario flash-crowd -seed 1 \
	-wl.record "$BENCH_TMP/fc_ci.trace" >"$BENCH_TMP/fc_live.txt"
go run ./cmd/outlierlb -scenario flash-crowd -seed 1 \
	-wl.replay "$BENCH_TMP/fc_ci.trace" >"$BENCH_TMP/fc_replay.txt"
diff "$BENCH_TMP/fc_live.txt" "$BENCH_TMP/fc_replay.txt"

# Resilience gate: one adversarial fault (clock skew), one pathological
# policy (reject-all admission), two control-channel faults (full
# controller partition, lossy channel under a load pulse), and one
# temporal surge (flash crowd, which also asserts replay fidelity via
# trace-replay-identity above) across the pinned 3 seeds. -assert fails
# the run unless every scorecard shows the fault detected, visible
# mitigation where demanded (retries and epoch fences for the channel
# faults, watchdog rollback for guard-*, provisioning for the surge),
# and steady state recovered within the 300 s budget; the scorecards
# are then persisted as a RESIL_*.json and round-tripped through
# tracetool's strict loader.
go run ./cmd/benchrunner -resil \
	-resil.scenarios clock-skew,guard-reject-all-admission,ctrl-partition,ctrl-lossy,flash-crowd,trace-replay-identity \
	-resil.seeds 1,2,3 -assert -out "$BENCH_TMP/RESIL_ci.json"
go run ./cmd/tracetool -resil "$BENCH_TMP/RESIL_ci.json" >/dev/null

# Static-analysis gate: staticcheck at a pinned version so CI and
# developer machines agree on the rule set. The tool is not vendored and
# CI never installs anything, so the gate is skipped with a notice when
# the binary is absent; install locally with
#   go install honnef.co/go/tools/cmd/staticcheck@2025.1
STATICCHECK_VERSION="2025.1"
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck -version 2>/dev/null | grep -q "$STATICCHECK_VERSION" || {
		echo "ci.sh: staticcheck is not the pinned $STATICCHECK_VERSION" >&2
		exit 1
	}
	staticcheck ./...
else
	echo "ci.sh: staticcheck $STATICCHECK_VERSION not installed; skipping static-analysis gate" >&2
fi
