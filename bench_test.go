// Benchmarks regenerating every table and figure of the paper's
// evaluation section (§5), plus ablations of the design choices and the
// overhead measurement behind the "lightweight monitoring" claim.
//
// Each experiment benchmark runs the full scenario per iteration and
// reports its headline results as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints both the cost of reproducing each result and the result itself.
// Absolute latencies differ from the paper's testbed (see EXPERIMENTS.md);
// the reported metrics preserve the shapes the paper argues from.
package outlierlb_test

import (
	"testing"

	"runtime"

	"outlierlb/internal/experiments"
	"outlierlb/internal/metrics"
	"outlierlb/internal/mrc"
	"outlierlb/internal/sim"
	"outlierlb/internal/trace"
)

// BenchmarkFigure3 regenerates §5.2: sinusoid load, reactive
// provisioning, latency back under the SLA.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(uint64(i + 1))
		b.ReportMetric(float64(r.MaxMachines()), "peak-machines")
		b.ReportMetric(r.FinalLatency(), "final-latency-s")
	}
}

// BenchmarkFigure4 regenerates §5.3's diagnosis data: per-class metric
// ratios after the O_DATE index drop and the outlier classification.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(uint64(i + 1))
		b.ReportMetric(float64(len(r.MemoryOutliers)), "memory-outliers")
		b.ReportMetric(float64(len(r.Confirmed)), "confirmed-classes")
		for j, c := range r.Classes {
			if c == "BestSeller" {
				b.ReportMetric(r.ReadAheadRatio[j], "bestseller-readahead-x")
			}
		}
	}
}

// BenchmarkFigure5 regenerates the BestSeller miss-ratio curve
// (paper: acceptable memory 6982 pages).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(uint64(i + 1))
		b.ReportMetric(float64(r.Params.AcceptableMemory), "acceptable-pages")
	}
}

// BenchmarkFigure6 regenerates the SearchItemsByRegion miss-ratio curve
// (paper: acceptable memory ≈7906 pages).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(uint64(i + 1))
		b.ReportMetric(float64(r.Params.AcceptableMemory), "acceptable-pages")
	}
}

// BenchmarkTable1 regenerates the buffer-pool partitioning study
// (paper: non-BestSeller 96.2% shared → 99.5% partitioned → 99.9% ideal).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(uint64(i + 1))
		b.ReportMetric(r.SharedRest, "rest-shared-pct")
		b.ReportMetric(r.PartitionedRest, "rest-partitioned-pct")
		b.ReportMetric(r.ExclusiveRest, "rest-exclusive-pct")
		b.ReportMetric(float64(r.BestQuota), "bestseller-quota-pages")
	}
}

// BenchmarkTable2 regenerates the shared-pool consolidation study
// (paper: TPC-W 0.54 s → 5.42 s → 1.27 s after moving SIBR).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(uint64(i + 1))
		b.ReportMetric(r.Rows[0].Latency, "alone-latency-s")
		b.ReportMetric(r.Rows[1].Latency, "shared-latency-s")
		b.ReportMetric(r.Rows[2].Latency, "fixed-latency-s")
	}
}

// BenchmarkTable3 regenerates the dom-0 I/O contention study
// (paper: 1.5 s → 4.8 s → 1.5 s; SIBR contributes 87% of RUBiS I/O).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(uint64(i + 1))
		b.ReportMetric(r.Rows[0].Latency, "alone-latency-s")
		b.ReportMetric(r.Rows[1].Latency, "contended-latency-s")
		b.ReportMetric(r.Rows[2].Latency, "fixed-latency-s")
		b.ReportMetric(100*r.TopIOShare, "top-io-share-pct")
	}
}

// BenchmarkAblationQuotaVsMigrate quantifies the §3.3.2 trade-off:
// containment by quota holds one machine; migration buys latency with a
// second machine.
func BenchmarkAblationQuotaVsMigrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		quota, migrate := experiments.AblationQuotaVsMigrate(uint64(i + 1))
		b.ReportMetric(float64(quota.ServersUsed), "quota-servers")
		b.ReportMetric(quota.FinalLatency, "quota-latency-s")
		b.ReportMetric(float64(migrate.ServersUsed), "migrate-servers")
		b.ReportMetric(migrate.FinalLatency, "migrate-latency-s")
	}
}

// BenchmarkAblationFineVsCoarse compares the fine-grained policy against
// coarse-only isolation on the consolidation scenario.
func BenchmarkAblationFineVsCoarse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fine, coarse := experiments.AblationFineVsCoarse(uint64(i + 1))
		b.ReportMetric(float64(fine.ServersUsed), "fine-servers")
		b.ReportMetric(fine.RecoverySeconds, "fine-recovery-s")
		b.ReportMetric(float64(coarse.ServersUsed), "coarse-servers")
		b.ReportMetric(coarse.RecoverySeconds, "coarse-recovery-s")
	}
}

// BenchmarkAblationOutlierVsTopK reports how focused the outlier
// detector's candidate set is compared to blanket top-k investigation.
func BenchmarkAblationOutlierVsTopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationOutlierVsTopK(uint64(i + 1))
		b.ReportMetric(float64(r.OutlierCandidates), "outlier-candidates")
		found := 0.0
		if r.OutlierFoundBestSeller {
			found = 1
		}
		b.ReportMetric(found, "culprit-found")
	}
}

// BenchmarkAblationWeighting ablates the metric-impact weighting (§3):
// weighted detection focuses on heavy, affected classes; plain ratios
// flag featherweights whose ratios merely wobble.
func BenchmarkAblationWeighting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationWeighting(uint64(i + 1))
		b.ReportMetric(float64(len(r.WeightedOutliers)), "weighted-flagged")
		b.ReportMetric(float64(len(r.UnweightedOutliers)), "unweighted-flagged")
		culprit := 0.0
		if r.WeightedHasCulprit {
			culprit = 1
		}
		b.ReportMetric(culprit, "weighted-has-culprit")
	}
}

// BenchmarkAblationFences sweeps the IQR fence multiplier and reports the
// flagged-class count at the paper's 1.5 setting.
func BenchmarkAblationFences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.AblationFences(uint64(i + 1))
		for _, pt := range pts {
			if pt.Inner == 1.5 {
				b.ReportMetric(float64(pt.Outliers), "flagged-at-1.5")
			}
		}
	}
}

// BenchmarkAblationMidpointVsQuota compares InnoDB-style midpoint
// insertion against the paper's quota on the §5.3 trace: the engine knob
// does not absorb cross-class pollution from a cycling scan; the quota
// does.
func BenchmarkAblationMidpointVsQuota(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationMidpointVsQuota(uint64(i + 1))
		b.ReportMetric(r.SharedLRU, "rest-lru-pct")
		b.ReportMetric(r.SharedMidpoint, "rest-midpoint-pct")
		b.ReportMetric(r.Partitioned, "rest-quota-pct")
	}
}

// BenchmarkFailureRecovery crashes one of two replicas under load and
// measures the latency envelope until the controller restores capacity.
func BenchmarkFailureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FailureRecovery(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BeforeLatency, "healthy-latency-s")
		b.ReportMetric(r.DuringLatency, "failover-latency-s")
		b.ReportMetric(r.AfterLatency, "recovered-latency-s")
		b.ReportMetric(float64(r.ClientErrors), "client-errors")
	}
}

// BenchmarkAblationSyncVsAsync compares synchronous ROWA against the
// asynchronous replication substrate on a heterogeneous cluster (one
// straggler replica).
func BenchmarkAblationSyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sync, async := experiments.AblationSyncVsAsync(uint64(i + 1))
		b.ReportMetric(sync.AvgLatency, "sync-latency-s")
		b.ReportMetric(async.AvgLatency, "async-latency-s")
		b.ReportMetric(sync.WIPS, "sync-wips")
		b.ReportMetric(async.WIPS, "async-wips")
	}
}

// BenchmarkLockContention runs the §7 future-work scenario: a write
// query invoked with "wrong arguments" convoys the accounts table; the
// detector flags the lock-wait outlier and names the holder.
func BenchmarkLockContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.LockContention(uint64(i + 1))
		b.ReportMetric(r.StableLatency, "stable-latency-s")
		b.ReportMetric(r.ContendedLatency, "contended-latency-s")
		found := 0.0
		if r.ReportedVictim != "" {
			found = 1
		}
		b.ReportMetric(found, "holder-named")
	}
}

// BenchmarkMattson measures the per-access cost of on-line MRC tracking —
// the overhead behind the paper's "lightweight monitoring" claim.
func BenchmarkMattson(b *testing.B) {
	rng := sim.NewRNG(1)
	z := trace.NewZipfSet(rng, 0, 1<<16, 1.2)
	pages := trace.Generate(z, 1<<20)
	s := mrc.NewStackSimulator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(pages[i&(1<<20-1)])
	}
}

// BenchmarkMRCCompute measures one full MRC recomputation from a recent
// page-access window, the cost paid per problem query class on an SLA
// violation.
func BenchmarkMRCCompute(b *testing.B) {
	rng := sim.NewRNG(1)
	z := trace.NewZipfSet(rng, 0, 9000, 1.1)
	window := trace.Generate(z, 49152)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := mrc.Compute(window)
		_ = curve.ParamsFor(8192, mrc.DefaultThreshold)
	}
}

// BenchmarkCollectorParallel measures the sharded statistics append path
// under increasing parallelism. Each benchmark goroutine owns a private
// LogBuffer draining into its own shard, so throughput should scale with
// GOMAXPROCS (run with -cpu 1,2,4,8 to see the curve); compare against
// BenchmarkCollectorFlatParallel, where every goroutine contends on one
// collector's lock.
func BenchmarkCollectorParallel(b *testing.B) {
	sc := metrics.NewShardedCollector(runtime.GOMAXPROCS(0))
	id := metrics.ClassID{App: "bench", Class: "Append"}
	b.RunParallel(func(pb *testing.PB) {
		buf := sc.Worker(256)
		for pb.Next() {
			buf.Append(metrics.Record{Kind: metrics.RecQuery, Class: id, Value: 0.01})
		}
		buf.Flush()
	})
	b.StopTimer()
	sc.Snapshot(1)
}

// BenchmarkCollectorFlatParallel is the contended baseline for
// BenchmarkCollectorParallel: same record stream, but every goroutine's
// buffer drains into a single shared collector.
func BenchmarkCollectorFlatParallel(b *testing.B) {
	c := metrics.NewCollector()
	id := metrics.ClassID{App: "bench", Class: "Append"}
	b.RunParallel(func(pb *testing.PB) {
		buf := metrics.NewLogBuffer(256, metrics.Drain(c))
		for pb.Next() {
			buf.Append(metrics.Record{Kind: metrics.RecQuery, Class: id, Value: 0.01})
		}
		buf.Flush()
	})
	b.StopTimer()
	c.Snapshot(1)
}
